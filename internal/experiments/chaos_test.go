package experiments

import (
	"testing"

	"thor/internal/chaos"
	"thor/internal/datagen"
)

// TestChaosIsolationBothDatasets is the end-to-end chaos suite: both
// synthetic corpora run under source corruption and stage-boundary fault
// injection, and the documents that survive must be bit-identical to a clean
// run over exactly that subset. Rates are tuned so well under 30% of the
// corpus gets quarantined — the invariant must hold with plenty of healthy
// documents left to compare.
func TestChaosIsolationBothDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full synthetic datasets")
	}
	for _, ds := range []*datagen.Dataset{DiseaseDataset(), ResumeDataset()} {
		for _, seed := range []uint64{1, 2024} {
			rep := RunChaos(ds, chaos.Config{
				Seed:              seed,
				ErrorRate:         0.02,
				TransientFraction: 0.5,
				PanicRate:         0.01,
				LatencyRate:       0.02,
				MaxLatency:        100000, // 100µs: exercise the sleep path cheaply
				TruncateRate:      0.05,
				CorruptRate:       0.05,
			})
			t.Logf("%s", rep)
			if rep.Completed+rep.Quarantined+rep.Skipped != rep.Documents {
				t.Errorf("%s/%d: documents unaccounted: %+v", ds.Name, seed, rep)
			}
			if rep.Skipped != 0 {
				t.Errorf("%s/%d: %d docs skipped in an uncancelled run", ds.Name, seed, rep.Skipped)
			}
			if 10*rep.Quarantined > 3*rep.Documents {
				t.Errorf("%s/%d: %d of %d docs quarantined (>30%%); rates too hot or retries broken",
					ds.Name, seed, rep.Quarantined, rep.Documents)
			}
			if rep.Quarantined > 0 && rep.QuarantineMetric != int64(rep.Quarantined) {
				t.Errorf("%s/%d: thor.quarantined metric %d != %d quarantined docs",
					ds.Name, seed, rep.QuarantineMetric, rep.Quarantined)
			}
			for _, f := range rep.Failures {
				if f.Doc == "" || f.Stage == "" || f.Err == "" {
					t.Errorf("%s/%d: incomplete failure record %+v", ds.Name, seed, f)
				}
			}
			if !rep.HealthyIdentical {
				t.Errorf("%s/%d: fault isolation violated: %s", ds.Name, seed, rep.Mismatch)
			}
		}
	}
}

// TestChaosReportReproducible: the same seed replays the same schedule, so
// the whole report — quarantine set included — is identical across runs.
func TestChaosReportReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full Disease dataset")
	}
	ds := DiseaseDataset()
	cfg := chaos.Config{Seed: 77, ErrorRate: 0.03, PanicRate: 0.01, TruncateRate: 0.05}
	a, b := RunChaos(ds, cfg), RunChaos(ds, cfg)
	if a.Quarantined != b.Quarantined || a.Completed != b.Completed || a.Injected != b.Injected {
		t.Fatalf("same seed produced different chaos runs:\n%s\n%s", a, b)
	}
	for i := range a.Failures {
		if a.Failures[i].Doc != b.Failures[i].Doc || a.Failures[i].Stage != b.Failures[i].Stage {
			t.Errorf("failure %d differs: %+v vs %+v", i, a.Failures[i], b.Failures[i])
		}
	}
}
