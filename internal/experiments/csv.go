package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSVSeries materializes every table and figure as a CSV file under
// dir, ready for external plotting. File names follow the paper's artifact
// numbering (table5.csv, fig5.csv, ...).
func WriteCSVSeries(dir string, disease, resume *Comparison, study *AnnotationStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		rows [][]string
	}{
		{"table5.csv", comparisonRows(disease)},
		{"fig5.csv", prCurveRows(disease)},
		{"fig6.csv", timeRows(disease)},
		{"table6.csv", countRows(disease)},
		{"fig7.csv", barRows(disease)},
		{"table7.csv", conceptCountRows(disease)},
		{"table8.csv", sensitivityRows(disease)},
		{"table10.csv", annotationRows(study)},
		{"fig8.csv", annotationCurveRows(study)},
		{"table11.csv", comparisonRows(resume)},
		{"fig9.csv", barRows(resume)},
		{"fig10.csv", conceptF1Rows(resume)},
	}
	for _, w := range writers {
		if err := writeCSV(filepath.Join(dir, w.name), w.rows); err != nil {
			return fmt.Errorf("experiments: %s: %w", w.name, err)
		}
	}
	return nil
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f3(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }

func comparisonRows(c *Comparison) [][]string {
	rows := [][]string{{"model", "tau", "seconds", "simulated_gpu_seconds", "precision", "recall", "f1"}}
	for _, r := range c.All() {
		o := r.Report.Overall
		rows = append(rows, []string{
			r.Name, f3(r.Tau), f3(r.Measured.Seconds()), f3(r.Simulated.Seconds()),
			f3(o.Precision()), f3(o.Recall()), f3(o.F1()),
		})
	}
	return rows
}

func prCurveRows(c *Comparison) [][]string {
	rows := [][]string{{"model", "recall", "precision"}}
	for _, r := range c.All() {
		o := r.Report.Overall
		rows = append(rows, []string{r.Name, f3(o.Recall()), f3(o.Precision())})
	}
	return rows
}

func timeRows(c *Comparison) [][]string {
	rows := [][]string{{"tau", "seconds"}}
	for _, r := range c.Thor {
		rows = append(rows, []string{f3(r.Tau), f3(r.Measured.Seconds())})
	}
	return rows
}

func countRows(c *Comparison) [][]string {
	rows := [][]string{{"model", "gold", "predicted", "tp", "fp"}}
	for _, r := range append(topPrecisionThor(c), c.Others...) {
		o := r.Report.Overall
		rows = append(rows, []string{
			r.Name,
			strconv.Itoa(r.Report.GoldTotal), strconv.Itoa(o.Predicted()),
			strconv.Itoa(o.TP()), strconv.Itoa(o.FP()),
		})
	}
	return rows
}

func barRows(c *Comparison) [][]string {
	rows := [][]string{{"model", "tp", "fp", "fn"}}
	for _, r := range append(topPrecisionThor(c), c.Others...) {
		o := r.Report.Overall
		rows = append(rows, []string{
			r.Name, strconv.Itoa(o.TP()), strconv.Itoa(o.FP()), strconv.Itoa(o.FN()),
		})
	}
	return rows
}

func conceptCountRows(c *Comparison) [][]string {
	rows := [][]string{{"concept", "model", "predicted", "tp", "fn"}}
	for _, concept := range conceptsOf(c) {
		for _, r := range exp1Systems(c) {
			o := r.Report.PerConcept[concept]
			rows = append(rows, []string{
				string(concept), r.Name,
				strconv.Itoa(o.Predicted()), strconv.Itoa(o.TP()), strconv.Itoa(o.FN()),
			})
		}
	}
	return rows
}

func sensitivityRows(c *Comparison) [][]string {
	rows := [][]string{{"concept", "model", "sensitivity"}}
	for _, concept := range conceptsOf(c) {
		for _, r := range exp1Systems(c) {
			rows = append(rows, []string{
				string(concept), r.Name, f3(r.Report.PerConcept[concept].Sensitivity()),
			})
		}
	}
	return rows
}

func conceptF1Rows(c *Comparison) [][]string {
	rows := [][]string{{"concept", "model", "f1"}}
	for _, concept := range conceptsOf(c) {
		for _, r := range exp1Systems(c) {
			rows = append(rows, []string{
				string(concept), r.Name, f3(r.Report.PerConcept[concept].F1()),
			})
		}
	}
	return rows
}

func annotationRows(s *AnnotationStudy) [][]string {
	rows := [][]string{{"model", "subjects", "docs", "entities", "words", "f1", "annotation_seconds"}}
	rows = append(rows, []string{
		"THOR", "0", "0",
		strconv.Itoa(s.ThorEntities), strconv.Itoa(s.ThorWords), f3(s.ThorF1), "0",
	})
	for _, p := range s.Points {
		rows = append(rows, []string{
			p.Name, strconv.Itoa(p.Subjects), strconv.Itoa(p.Docs),
			strconv.Itoa(p.Entities), strconv.Itoa(p.Words), f3(p.F1),
			f3(p.AnnotationSeconds),
		})
	}
	return rows
}

func annotationCurveRows(s *AnnotationStudy) [][]string {
	rows := [][]string{{"model", "annotation_hours", "f1"}}
	rows = append(rows, []string{"THOR", "0", f3(s.ThorF1)})
	for _, p := range s.Points {
		rows = append(rows, []string{p.Name, f3(p.AnnotationSeconds / 3600), f3(p.F1)})
	}
	return rows
}
