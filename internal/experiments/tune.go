package experiments

import (
	"thor/internal/datagen"
	"thor/internal/eval"
	"thor/internal/schema"
	"thor/internal/thor"
)

// TuneObjective selects what the τ search optimizes — the paper's
// "precision-oriented or recall-oriented, based on user preferences".
type TuneObjective int

const (
	// TuneF1 balances precision and recall (the paper's default reporting).
	TuneF1 TuneObjective = iota
	// TunePrecision prefers fewer, surer slot fills.
	TunePrecision
	// TuneRecall prefers coverage.
	TuneRecall
)

// TuneResult is the outcome of a validation-split threshold search.
type TuneResult struct {
	// Tau is the selected threshold.
	Tau float64
	// ValidScore is the objective value on the validation split.
	ValidScore float64
	// Scores lists the objective value per candidate τ, parallel to Taus.
	Scores []float64
}

// TuneTau selects τ on the dataset's validation split: it runs the pipeline
// at every candidate threshold against the validation documents and picks
// the objective-maximizing value. This is the standard use of the held-out
// split (Table III) and exercises the paper's claim that THOR "offers the
// flexibility to be tuned for either precision or recall".
func TuneTau(ds *datagen.Dataset, objective TuneObjective) (*TuneResult, error) {
	// The validation target table: one row per validation subject, cleared.
	target := validTable(ds)
	res := &TuneResult{Tau: Taus[0], ValidScore: -1}
	for _, tau := range Taus {
		run, err := thor.Run(target, ds.Space, ds.Valid.Docs, thor.Config{
			Tau:        tau,
			Knowledge:  ds.Table,
			Lexicon:    ds.Lexicon,
			TuneCache:  tuneCache,
			ParseCache: parseCache,
		})
		if err != nil {
			return nil, err
		}
		var preds []eval.Mention
		for _, e := range run.AllEntities() {
			preds = append(preds, eval.Mention{Subject: e.Subject, Concept: e.Concept, Phrase: e.Phrase})
		}
		o := eval.Evaluate(preds, ds.Valid.Gold).Overall
		var score float64
		switch objective {
		case TunePrecision:
			score = o.Precision()
		case TuneRecall:
			score = o.Recall()
		default:
			score = o.F1()
		}
		res.Scores = append(res.Scores, score)
		if score > res.ValidScore {
			res.Tau, res.ValidScore = tau, score
		}
	}
	return res, nil
}

func validTable(ds *datagen.Dataset) *schema.Table {
	t := schema.NewTable(ds.Table.Schema)
	for _, s := range ds.Valid.Subjects {
		t.AddRow(s)
	}
	return t
}
