// Package experiments reproduces the paper's evaluation section: Experiment
// 1 (comparison against the state of the art, Tables V–VIII and Figs. 5–7),
// Experiment 2 (manual vs. automatic annotation, Tables IX–X and Fig. 8) and
// Experiment 3 (generalizability on Résumé, Table XI and Figs. 9–10). Every
// table and figure has a renderer in render.go and a benchmark in the
// repository root's bench_test.go.
package experiments
