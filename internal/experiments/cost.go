package experiments

import "time"

// SimulatedCost estimates the original (GPU-era) runtime of a comparator
// from corpus sizes. The paper's hardware is unavailable, so this cost model
// is calibrated to the wall-clock figures it reports (Table V and Section
// VI-A "Compute Requirements"):
//
//   - LM-SD and LM-Human fine-tune RoBERTa-Base on an RTX 3060 (1–3 h
//     including inference; Table V: 3,626 s and 3,564 s),
//   - UniNER runs 7B-parameter inference on an A100 (34–56 min over the
//     test documents; Table V: 3,298 s),
//   - GPT-4 is a metered API whose latency the paper does not report,
//   - the Baseline and THOR run on a plain CPU: their measured time IS the
//     real cost, so the model returns zero for them.
//
// The constants below reproduce the paper's magnitudes at the paper's corpus
// sizes and scale linearly for other workloads.
func SimulatedCost(model string, tableWords, trainWords, testWords int) time.Duration {
	const (
		// RoBERTa fine-tuning: seconds of RTX 3060 time per training word
		// (several epochs with evaluation passes).
		robertaTrainSecPerWord = 0.0148
		// RoBERTa inference over the test documents.
		robertaInferSecPerWord = 0.055
		// Structured rows are re-rendered and oversampled for LM-SD, so its
		// effective per-word cost is much higher than LM-Human's.
		lmsdTrainSecPerWord = 0.185
		// UniNER-7B generation-style inference on an A100.
		uninerInferSecPerWord = 0.17
	)
	var secs float64
	switch model {
	case "LM-SD":
		secs = lmsdTrainSecPerWord*float64(tableWords) +
			robertaInferSecPerWord*float64(testWords)
	case "LM-Human":
		secs = robertaTrainSecPerWord*float64(trainWords) +
			robertaInferSecPerWord*float64(testWords)
	case "UniNER":
		secs = uninerInferSecPerWord * float64(testWords)
	default: // Baseline, THOR, GPT-4: no GPU cost to simulate
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}
