package experiments

import (
	"sync"

	"thor/internal/datagen"
)

// The datasets and full comparisons are deterministic and somewhat costly to
// build, so benchmarks and the CLI share memoized instances.
var (
	diseaseOnce sync.Once
	diseaseDS   *datagen.Dataset

	resumeOnce sync.Once
	resumeDS   *datagen.Dataset

	diseaseCmpOnce sync.Once
	diseaseCmp     *Comparison

	resumeCmpOnce sync.Once
	resumeCmp     *Comparison

	annotationOnce  sync.Once
	annotationStudy *AnnotationStudy
)

// DiseaseDataset returns the shared Disease A-Z dataset.
func DiseaseDataset() *datagen.Dataset {
	diseaseOnce.Do(func() { diseaseDS = datagen.Disease(datagen.DiseaseSeed) })
	return diseaseDS
}

// ResumeDataset returns the shared Résumé dataset.
func ResumeDataset() *datagen.Dataset {
	resumeOnce.Do(func() { resumeDS = datagen.Resume(datagen.ResumeSeed) })
	return resumeDS
}

// DiseaseComparison returns the shared Experiment 1 results.
func DiseaseComparison() *Comparison {
	diseaseCmpOnce.Do(func() { diseaseCmp = Compare(DiseaseDataset()) })
	return diseaseCmp
}

// ResumeComparison returns the shared Experiment 3 results.
func ResumeComparison() *Comparison {
	resumeCmpOnce.Do(func() { resumeCmp = Compare(ResumeDataset()) })
	return resumeCmp
}

// Annotation returns the shared Experiment 2 results.
func Annotation() *AnnotationStudy {
	annotationOnce.Do(func() { annotationStudy = StudyAnnotation(DiseaseDataset()) })
	return annotationStudy
}
