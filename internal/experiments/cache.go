package experiments

import (
	"sync"

	"thor/internal/datagen"
	"thor/internal/matcher"
	"thor/internal/models"
	"thor/internal/thor"
)

// The datasets and full comparisons are deterministic and somewhat costly to
// build, so benchmarks and the CLI share memoized instances.
var (
	diseaseOnce sync.Once
	diseaseDS   *datagen.Dataset

	resumeOnce sync.Once
	resumeDS   *datagen.Dataset

	diseaseCmpOnce sync.Once
	diseaseCmp     *Comparison

	resumeCmpOnce sync.Once
	resumeCmp     *Comparison

	annotationOnce  sync.Once
	annotationStudy *AnnotationStudy

	// tuneCache shares fine-tuned matchers across every experiment run,
	// keyed by (space, table fingerprint, matcher config): the comparison
	// sweep, τ tuning and the annotation study all fine-tune on the same
	// knowledge tables, so only the first run per (dataset, τ) pays for
	// cluster expansion. Results are identical with or without the cache
	// (covered by the thor package's cached-fine-tune determinism test).
	tuneCache = matcher.NewCache()

	// parseCache shares sentence analyses (POS tags, dependency parses,
	// noun phrases) across every THOR run: the τ sweep, tuning and the
	// annotation study all read the same documents, and parses are
	// τ-independent. The lexicon is part of the cache key, so both
	// datasets safely share one cache. Results are identical with or
	// without it.
	parseCache = thor.NewParseCache()

	// lmMu guards lmPool, which shares LM-Human models across experiments:
	// Experiment 1's comparator (the full training split) and Experiment 2's
	// largest annotation point fine-tune on identical data, and a model is
	// deterministic and safe for concurrent Extract after construction, so
	// one instance (with its warmed decision memo) serves both.
	lmMu   sync.Mutex
	lmPool = map[lmKey]*models.LMHuman{}
)

// lmKey identifies an LM-Human fine-tune: the dataset instance and the
// annotated-subject count (the Table X sweep axis).
type lmKey struct {
	ds *datagen.Dataset
	n  int
}

// lmHumanFor returns the memoized LM-Human model fine-tuned on the first n
// training subjects of ds (n capped at the full split).
func lmHumanFor(ds *datagen.Dataset, n int) *models.LMHuman {
	if n > len(ds.Train.Subjects) {
		n = len(ds.Train.Subjects)
	}
	key := lmKey{ds: ds, n: n}
	lmMu.Lock()
	defer lmMu.Unlock()
	if m, ok := lmPool[key]; ok {
		return m
	}
	subset := trainSubset(ds, n)
	m := models.NewLMHuman(subset.Gold, subset.Docs, ds.Space, ds.TestTable().Subjects(), ds.Lexicon)
	lmPool[key] = m
	return m
}

// TuneCache returns the shared fine-tune cache the experiments run with.
func TuneCache() *matcher.Cache { return tuneCache }

// SharedParseCache returns the shared sentence-analysis cache the
// experiments run with.
func SharedParseCache() *thor.ParseCache { return parseCache }

// DiseaseDataset returns the shared Disease A-Z dataset.
func DiseaseDataset() *datagen.Dataset {
	diseaseOnce.Do(func() { diseaseDS = datagen.Disease(datagen.DiseaseSeed) })
	return diseaseDS
}

// ResumeDataset returns the shared Résumé dataset.
func ResumeDataset() *datagen.Dataset {
	resumeOnce.Do(func() { resumeDS = datagen.Resume(datagen.ResumeSeed) })
	return resumeDS
}

// DiseaseComparison returns the shared Experiment 1 results.
func DiseaseComparison() *Comparison {
	diseaseCmpOnce.Do(func() { diseaseCmp = Compare(DiseaseDataset()) })
	return diseaseCmp
}

// ResumeComparison returns the shared Experiment 3 results.
func ResumeComparison() *Comparison {
	resumeCmpOnce.Do(func() { resumeCmp = Compare(ResumeDataset()) })
	return resumeCmp
}

// Annotation returns the shared Experiment 2 results.
func Annotation() *AnnotationStudy {
	annotationOnce.Do(func() { annotationStudy = StudyAnnotation(DiseaseDataset()) })
	return annotationStudy
}
