package experiments

import (
	"sync"

	"thor/internal/datagen"
	"thor/internal/matcher"
	"thor/internal/thor"
)

// The datasets and full comparisons are deterministic and somewhat costly to
// build, so benchmarks and the CLI share memoized instances.
var (
	diseaseOnce sync.Once
	diseaseDS   *datagen.Dataset

	resumeOnce sync.Once
	resumeDS   *datagen.Dataset

	diseaseCmpOnce sync.Once
	diseaseCmp     *Comparison

	resumeCmpOnce sync.Once
	resumeCmp     *Comparison

	annotationOnce  sync.Once
	annotationStudy *AnnotationStudy

	// tuneCache shares fine-tuned matchers across every experiment run,
	// keyed by (space, table fingerprint, matcher config): the comparison
	// sweep, τ tuning and the annotation study all fine-tune on the same
	// knowledge tables, so only the first run per (dataset, τ) pays for
	// cluster expansion. Results are identical with or without the cache
	// (covered by the thor package's cached-fine-tune determinism test).
	tuneCache = matcher.NewCache()

	// parseCache shares sentence analyses (POS tags, dependency parses,
	// noun phrases) across every THOR run: the τ sweep, tuning and the
	// annotation study all read the same documents, and parses are
	// τ-independent. The lexicon is part of the cache key, so both
	// datasets safely share one cache. Results are identical with or
	// without it.
	parseCache = thor.NewParseCache()
)

// TuneCache returns the shared fine-tune cache the experiments run with.
func TuneCache() *matcher.Cache { return tuneCache }

// SharedParseCache returns the shared sentence-analysis cache the
// experiments run with.
func SharedParseCache() *thor.ParseCache { return parseCache }

// DiseaseDataset returns the shared Disease A-Z dataset.
func DiseaseDataset() *datagen.Dataset {
	diseaseOnce.Do(func() { diseaseDS = datagen.Disease(datagen.DiseaseSeed) })
	return diseaseDS
}

// ResumeDataset returns the shared Résumé dataset.
func ResumeDataset() *datagen.Dataset {
	resumeOnce.Do(func() { resumeDS = datagen.Resume(datagen.ResumeSeed) })
	return resumeDS
}

// DiseaseComparison returns the shared Experiment 1 results.
func DiseaseComparison() *Comparison {
	diseaseCmpOnce.Do(func() { diseaseCmp = Compare(DiseaseDataset()) })
	return diseaseCmp
}

// ResumeComparison returns the shared Experiment 3 results.
func ResumeComparison() *Comparison {
	resumeCmpOnce.Do(func() { resumeCmp = Compare(ResumeDataset()) })
	return resumeCmp
}

// Annotation returns the shared Experiment 2 results.
func Annotation() *AnnotationStudy {
	annotationOnce.Do(func() { annotationStudy = StudyAnnotation(DiseaseDataset()) })
	return annotationStudy
}
