package experiments

import (
	"sync"

	"thor/internal/obs"
)

// The experiment harness optionally threads one observability sink through
// every THOR run it performs (thorbench sets it from -metrics-addr /
// -metrics-json). Nil values disable instrumentation, which is the default
// and costs nothing.
var (
	obsMu     sync.RWMutex
	obsReg    *obs.Registry
	obsTracer *obs.Tracer
)

// SetInstruments installs the registry and tracer every subsequent
// experiment pipeline run reports into. Pass nils to disable. Call before
// the first experiment runs: comparisons are memoized, so instruments
// installed later see only uncached runs.
func SetInstruments(reg *obs.Registry, tr *obs.Tracer) {
	obsMu.Lock()
	obsReg, obsTracer = reg, tr
	obsMu.Unlock()
}

// Instruments returns the currently installed registry and tracer (nil,
// nil when disabled).
func Instruments() (*obs.Registry, *obs.Tracer) {
	obsMu.RLock()
	defer obsMu.RUnlock()
	return obsReg, obsTracer
}
