package experiments

import (
	"fmt"
	"io"
	"time"

	"thor/internal/schema"
	"thor/internal/thor"
)

// fmtDur renders a duration as whole seconds, matching the paper's tables.
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	if d < time.Second {
		return fmt.Sprintf("%.2f", d.Seconds())
	}
	return fmt.Sprintf("%.0f", d.Seconds())
}

// RenderTableV writes the Table V comparison: time, precision, recall and F1
// for the THOR τ sweep and the comparators. Two time columns are shown: the
// measured CPU seconds of this implementation and, where applicable, the
// cost-model estimate of the original GPU runtime.
func RenderTableV(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Table V — comparative results for slot-filling on %s\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-14s %10s %10s %6s %6s %6s\n", "Model", "Time(s)", "SimGPU(s)", "P", "R", "F1")
	for _, r := range c.All() {
		o := r.Report.Overall
		fmt.Fprintf(w, "%-14s %10s %10s %6.2f %6.2f %6.2f\n",
			r.Name, fmtDur(r.Measured), fmtDur(r.Simulated), o.Precision(), o.Recall(), o.F1())
	}
}

// RenderStageCosts writes the per-stage latency breakdown of the THOR run
// at the best threshold: where the wall clock goes inside preparation →
// segmentation → parsing → matching → refinement → slot filling. This is
// the baseline future caching/sharding/batching PRs are measured against.
func RenderStageCosts(w io.Writer, c *Comparison) {
	r := c.ThorAt(BestTau)
	if r == nil {
		return
	}
	RenderStageTable(w, fmt.Sprintf("%s at τ=%.1f", c.Dataset.Name, BestTau), r.Stats)
}

// RenderStageTable writes the per-stage breakdown of one labeled pipeline
// run: calls, total and mean latency, and each stage's share of the summed
// stage time.
func RenderStageTable(w io.Writer, label string, s thor.Stats) {
	if len(s.Stages) == 0 {
		return
	}
	var total time.Duration
	for _, st := range s.Stages {
		total += st.Total
	}
	fmt.Fprintf(w, "Stage costs — %s (%d docs, %d sentences, %d phrases)\n",
		label, s.Documents, s.Sentences, s.Phrases)
	fmt.Fprintf(w, "%-16s %10s %12s %12s %7s\n", "Stage", "Calls", "Total(ms)", "Mean(µs)", "Share")
	for _, st := range s.Stages {
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / float64(total)
		}
		fmt.Fprintf(w, "%-16s %10d %12.2f %12.1f %6.1f%%\n",
			st.Stage, st.Calls,
			float64(st.Total)/float64(time.Millisecond),
			float64(st.Mean())/float64(time.Microsecond),
			share)
	}
}

// RenderFig5 writes the precision–recall series of Fig. 5: one (R, P) point
// per THOR threshold plus one per comparator.
func RenderFig5(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Fig 5 — precision-recall curve on %s (series: recall precision label)\n", c.Dataset.Name)
	for _, r := range c.Thor {
		o := r.Report.Overall
		fmt.Fprintf(w, "%.3f %.3f THOR(τ=%.1f)\n", o.Recall(), o.Precision(), r.Tau)
	}
	for _, r := range c.Others {
		o := r.Report.Overall
		fmt.Fprintf(w, "%.3f %.3f %s\n", o.Recall(), o.Precision(), r.Name)
	}
}

// RenderFig6 writes the inference-time-vs-threshold series of Fig. 6.
func RenderFig6(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Fig 6 — THOR inference time for increasing threshold on %s (series: tau seconds)\n", c.Dataset.Name)
	for _, r := range c.Thor {
		fmt.Fprintf(w, "%.1f %.3f\n", r.Tau, r.Measured.Seconds())
	}
}

// topPrecisionThor returns the three most precision-oriented THOR rows
// (highest τ), strongest precision first — the "top-3 precision" selection
// of Tables VI and XI.
func topPrecisionThor(c *Comparison) []SystemResult {
	n := len(c.Thor)
	if n > 3 {
		return []SystemResult{c.Thor[n-3], c.Thor[n-2], c.Thor[n-1]}
	}
	return c.Thor
}

// RenderTableVI writes the raw prediction counts of Table VI.
func RenderTableVI(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Table VI — raw prediction counts on %s\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-14s %8s %10s %8s %8s\n", "Model", "Gold", "Predicted", "TP", "FP")
	rows := append(topPrecisionThor(c), c.Others...)
	for _, r := range rows {
		o := r.Report.Overall
		fmt.Fprintf(w, "%-14s %8d %10d %8d %8d\n",
			r.Name, r.Report.GoldTotal, o.Predicted(), o.TP(), o.FP())
	}
}

// RenderFig7 writes the TP/FP/FN bars of Fig. 7 (and Fig. 9 for Résumé).
func RenderFig7(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Fig 7/9 — prediction counts vs ground truth on %s (series: model TP FP FN)\n", c.Dataset.Name)
	rows := append(topPrecisionThor(c), c.Others...)
	for _, r := range rows {
		o := r.Report.Overall
		fmt.Fprintf(w, "%-14s %6d %6d %6d\n", r.Name, o.TP(), o.FP(), o.FN())
	}
}

// exp1Systems returns the six systems of the fine-grained tables: the five
// comparators plus THOR at the τ the paper uses there (0.8).
func exp1Systems(c *Comparison) []SystemResult {
	rows := make([]SystemResult, 0, 6)
	rows = append(rows, c.Others...)
	if t := c.ThorAt(0.8); t != nil {
		rows = append(rows, *t)
	}
	return rows
}

// RenderTableVII writes the concept-wise Pred/TP/FN breakdown of Table VII.
func RenderTableVII(w io.Writer, c *Comparison) {
	rows := exp1Systems(c)
	fmt.Fprintf(w, "Table VII — concept-wise fine-grained results on %s\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-22s %8s", "Concept", "Gold")
	for _, r := range rows {
		fmt.Fprintf(w, " | %-24s", r.Name+" (Pred/TP/FN)")
	}
	fmt.Fprintln(w)
	for _, concept := range conceptsOf(c) {
		gold := goldCount(c, concept)
		fmt.Fprintf(w, "%-22s %8d", concept, gold)
		for _, r := range rows {
			o := r.Report.PerConcept[concept]
			fmt.Fprintf(w, " | %7d %7d %8d", o.Predicted(), o.TP(), o.FN())
		}
		fmt.Fprintln(w)
	}
}

// RenderTableVIII writes the concept-wise sensitivity of Table VIII.
func RenderTableVIII(w io.Writer, c *Comparison) {
	rows := exp1Systems(c)
	fmt.Fprintf(w, "Table VIII — sensitivity per concept on %s\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-22s", "Concept")
	for _, r := range rows {
		fmt.Fprintf(w, " %10s", shortName(r.Name))
	}
	fmt.Fprintln(w)
	for _, concept := range conceptsOf(c) {
		fmt.Fprintf(w, "%-22s", concept)
		for _, r := range rows {
			fmt.Fprintf(w, " %9.2f%%", 100*r.Report.PerConcept[concept].Sensitivity())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s", "Overall")
	for _, r := range rows {
		fmt.Fprintf(w, " %9.2f%%", 100*r.Report.Overall.Sensitivity())
	}
	fmt.Fprintln(w)
}

// RenderTableIX writes the annotation-effort figures of Table IX.
func RenderTableIX(w io.Writer, s *AnnotationStudy) {
	stats := avgDocWords(s)
	subjLo, subjHi := s.Cost.SubjectRange(stats.subjectDocWords)
	docLo, docHi := s.Cost.DocRange(stats.avgDocWords)
	fmt.Fprintf(w, "Table IX — annotation effort (min–max)\n")
	fmt.Fprintf(w, "Single subject : %4.0fm – %4.0fm\n", subjLo.Minutes(), subjHi.Minutes())
	fmt.Fprintf(w, "Single document: %4.0fm – %4.0fm\n", docLo.Minutes(), docHi.Minutes())
	fmt.Fprintf(w, "Single token   : %4.0fs – %4.0fs\n", s.Cost.MinTokenSeconds, s.Cost.MaxTokenSeconds)
	fmt.Fprintf(w, "Total duration : %.0f+ hours\n", s.Cost.TotalHours(statsTrainWords(s)))
}

type docStats struct {
	avgDocWords     int
	subjectDocWords []int
}

func avgDocWords(s *AnnotationStudy) docStats {
	ds := s.Dataset
	total, n := 0, 0
	var firstSubjectDocs []int
	first := ""
	for _, d := range ds.Train.Docs {
		w := countWords(d.Text)
		total += w
		n++
		if first == "" {
			first = d.DefaultSubject
		}
		if d.DefaultSubject == first {
			firstSubjectDocs = append(firstSubjectDocs, w)
		}
	}
	if n == 0 {
		return docStats{}
	}
	return docStats{avgDocWords: total / n, subjectDocWords: firstSubjectDocs}
}

func statsTrainWords(s *AnnotationStudy) int {
	total := 0
	for _, d := range s.Dataset.Train.Docs {
		total += countWords(d.Text)
	}
	return total
}

// RenderTableX writes the annotation-volume sweep of Table X.
func RenderTableX(w io.Writer, s *AnnotationStudy) {
	fmt.Fprintf(w, "Table X — performance vs annotation effort (LM-Human subsets vs THOR τ=%.1f)\n", BestTau)
	fmt.Fprintf(w, "%-14s %9s %6s %9s %8s %6s %14s\n",
		"Model", "Subjects", "Docs", "Entities", "Words", "F1", "AnnotTime(s)")
	fmt.Fprintf(w, "%-14s %9s %6s %9d %8d %6.2f %14d\n",
		fmt.Sprintf("THOR (τ=%.1f)", BestTau), "-", "-", s.ThorEntities, s.ThorWords, s.ThorF1, 0)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-14s %9d %6d %9d %8d %6.2f %14.0f\n",
			p.Name, p.Subjects, p.Docs, p.Entities, p.Words, p.F1, p.AnnotationSeconds)
	}
	if s.CrossoverSubjects >= 0 {
		fmt.Fprintf(w, "crossover: LM-Human needs %d annotated subjects to beat THOR\n", s.CrossoverSubjects)
	} else {
		fmt.Fprintf(w, "crossover: never reached within the sweep\n")
	}
}

// RenderFig8 writes the annotation-time-vs-F1 series of Fig. 8.
func RenderFig8(w io.Writer, s *AnnotationStudy) {
	fmt.Fprintf(w, "Fig 8 — annotation effort vs performance (series: hours F1 docs label)\n")
	fmt.Fprintf(w, "%.2f %.3f %d %s\n", 0.0, s.ThorF1, 0, "THOR")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%.2f %.3f %d %s\n", p.AnnotationSeconds/3600, p.F1, p.Docs, p.Name)
	}
}

// RenderTableXI writes the Résumé comparison of Table XI.
func RenderTableXI(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "Table XI — comparative overall results on %s (generalizability)\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-14s %8s %10s %6s %6s %6s %6s %6s\n",
		"Model", "Gold", "Predicted", "TP", "FP", "P", "R", "F1")
	rows := append(topPrecisionThor(c), c.Others...)
	for _, r := range rows {
		o := r.Report.Overall
		fmt.Fprintf(w, "%-14s %8d %10d %6d %6d %6.2f %6.2f %6.2f\n",
			r.Name, r.Report.GoldTotal, o.Predicted(), o.TP(), o.FP(),
			o.Precision(), o.Recall(), o.F1())
	}
}

// RenderFig10 writes the per-concept F1 spider series of Fig. 10.
func RenderFig10(w io.Writer, c *Comparison) {
	rows := exp1Systems(c)
	fmt.Fprintf(w, "Fig 10 — per-concept F1 on %s (series: concept then one F1 per model)\n", c.Dataset.Name)
	fmt.Fprintf(w, "%-22s", "Concept")
	for _, r := range rows {
		fmt.Fprintf(w, " %10s", shortName(r.Name))
	}
	fmt.Fprintln(w)
	for _, concept := range conceptsOf(c) {
		fmt.Fprintf(w, "%-22s", concept)
		for _, r := range rows {
			fmt.Fprintf(w, " %10.2f", r.Report.PerConcept[concept].F1())
		}
		fmt.Fprintln(w)
	}
}

// conceptsOf returns the dataset's schema concepts in column order.
func conceptsOf(c *Comparison) []schema.Concept {
	return c.Dataset.Table.Schema.Concepts
}

// goldCount counts the gold mentions of a concept in the test split.
func goldCount(c *Comparison, concept schema.Concept) int {
	n := 0
	for _, g := range c.Dataset.Test.Gold {
		if g.Concept == concept {
			n++
		}
	}
	return n
}

func shortName(name string) string {
	r := []rune(name)
	if len(r) > 10 {
		return string(r[:10])
	}
	return name
}
