package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"thor/internal/datagen"
	"thor/internal/eval"
	"thor/internal/models"
	"thor/internal/segment"
	"thor/internal/thor"
)

// Taus is the threshold sweep of Table V.
var Taus = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// BestTau is the F1-optimal threshold the paper reports (τ=0.7).
const BestTau = 0.7

// GPT4Seed fixes the zero-shot simulator's session.
const GPT4Seed = 20240301

// SystemResult is one evaluated system run.
type SystemResult struct {
	// Name is the display name ("THOR (τ=0.7)", "LM-SD", ...).
	Name string
	// Tau is set for THOR rows, 0 otherwise.
	Tau float64
	// Measured is this implementation's wall-clock time.
	Measured time.Duration
	// Simulated is the cost-model estimate of the original system's
	// GPU-era runtime (zero when the measured CPU time is the real cost).
	Simulated time.Duration
	// Report is the evaluation against the split's gold mentions.
	Report *eval.Report
	// Predictions retains the raw mentions (used by fine-grained tables).
	Predictions []eval.Mention
	// Stats carries the pipeline run statistics, including the per-stage
	// latency breakdown (THOR rows only; zero for comparator models).
	Stats thor.Stats
}

// ThorOnly reports whether the row belongs to the THOR sweep.
func (r SystemResult) ThorOnly() bool { return r.Tau > 0 }

// Comparison holds every system's result on one dataset, THOR sweep first.
type Comparison struct {
	// Dataset is the workload the systems were compared on.
	Dataset *datagen.Dataset
	Thor    []SystemResult // one per τ in Taus
	Others  []SystemResult // Baseline, LM-SD, GPT-4, UniNER, LM-Human
}

// ThorAt returns the THOR row for a threshold.
func (c *Comparison) ThorAt(tau float64) *SystemResult {
	for i := range c.Thor {
		if c.Thor[i].Tau == tau {
			return &c.Thor[i]
		}
	}
	return nil
}

// Other returns a named non-THOR row.
func (c *Comparison) Other(name string) *SystemResult {
	for i := range c.Others {
		if c.Others[i].Name == name {
			return &c.Others[i]
		}
	}
	return nil
}

// All returns every row, THOR sweep first.
func (c *Comparison) All() []SystemResult {
	out := make([]SystemResult, 0, len(c.Thor)+len(c.Others))
	out = append(out, c.Thor...)
	return append(out, c.Others...)
}

// runThor executes the pipeline at one threshold and evaluates it.
func runThor(ds *datagen.Dataset, tau float64) SystemResult {
	reg, tr := Instruments()
	start := time.Now()
	res, err := thor.Run(ds.TestTable(), ds.Space, ds.Test.Docs, thor.Config{
		Tau:        tau,
		Knowledge:  ds.Table,
		Lexicon:    ds.Lexicon,
		Metrics:    reg,
		Tracer:     tr,
		TuneCache:  tuneCache,
		ParseCache: parseCache,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: THOR run failed: %v", err)) // datasets are well-formed by construction
	}
	elapsed := time.Since(start)
	preds := make([]eval.Mention, 0, len(res.AllEntities()))
	for _, e := range res.AllEntities() {
		preds = append(preds, eval.Mention{Subject: e.Subject, Concept: e.Concept, Phrase: e.Phrase})
	}
	return SystemResult{
		Name:        fmt.Sprintf("THOR (τ=%.1f)", tau),
		Tau:         tau,
		Measured:    elapsed,
		Report:      eval.Evaluate(preds, ds.Test.Gold),
		Predictions: preds,
		Stats:       res.Stats,
	}
}

// runModel executes a comparator model and evaluates it.
func runModel(ds *datagen.Dataset, m models.Model, sim time.Duration) SystemResult {
	start := time.Now()
	preds := m.Extract(ds.Test.Docs)
	elapsed := time.Since(start)
	return SystemResult{
		Name:        m.Name(),
		Measured:    elapsed,
		Simulated:   sim,
		Report:      eval.Evaluate(preds, ds.Test.Gold),
		Predictions: preds,
	}
}

// buildModels constructs the five comparators for a dataset.
func buildModels(ds *datagen.Dataset) []models.Model {
	subjects := ds.TestTable().Subjects()
	return []models.Model{
		models.NewBaseline(ds.Table, subjects, ds.Lexicon),
		models.NewLMSD(ds.Table, ds.Space, subjects, ds.Lexicon),
		models.NewGPT4(ds.Table.Schema, ds.Space, ds.GenericConcept, ds.Vocab, subjects, ds.Lexicon, GPT4Seed),
		models.NewUniNER(ds.Vocab, ds.PretrainCoverage, subjects, ds.Lexicon),
		lmHumanFor(ds, len(ds.Train.Subjects)),
	}
}

// Compare runs the full system comparison on a dataset: the THOR τ sweep
// plus all five comparators. It implements Experiment 1 (Disease A-Z) and
// the system runs of Experiment 3 (Résumé).
func Compare(ds *datagen.Dataset) *Comparison {
	c := &Comparison{Dataset: ds}
	for _, tau := range Taus {
		c.Thor = append(c.Thor, runThor(ds, tau))
	}
	tblWords := tableWords(ds)
	trainWords := datagen.SplitStats(&ds.Train).Words
	testWords := datagen.SplitStats(&ds.Test).Words
	for _, m := range buildModels(ds) {
		c.Others = append(c.Others, runModel(ds, m, SimulatedCost(m.Name(), tblWords, trainWords, testWords)))
	}
	return c
}

// AnnotationPoint is one row of Table X: an LM-Human model fine-tuned on an
// annotated subset.
type AnnotationPoint struct {
	// Name is "LM-Human-N" with N the number of annotated subjects.
	Name string
	// Subjects, Docs, Entities and Words describe the annotated subset.
	Subjects, Docs, Entities, Words int
	// F1 is the subset model's score on the test split.
	F1 float64
	// AnnotationSeconds is the conservative manual effort (Table X's
	// 'Annotation Time(s)' column).
	AnnotationSeconds float64
}

// AnnotationStudy is Experiment 2's output.
type AnnotationStudy struct {
	// Dataset is the workload the study ran on.
	Dataset *datagen.Dataset
	// ThorF1 is THOR's reference score at BestTau (zero annotation time).
	ThorF1 float64
	// ThorEntities and ThorWords describe THOR's "training data": the
	// structured table.
	ThorEntities, ThorWords int
	// ThorStats carries the reference run's statistics, including the
	// per-stage latency breakdown.
	ThorStats thor.Stats
	// Points are the LM-Human subset models, smallest first.
	Points []AnnotationPoint
	// Cost is the annotation-effort model behind the time columns.
	Cost datagen.AnnotationCost
	// CrossoverSubjects is the smallest subset whose LM-Human beats THOR
	// (-1 when none does).
	CrossoverSubjects int
}

// AnnotationSubsets is the Table X sweep: annotated-subject counts.
var AnnotationSubsets = []int{1, 10, 15, 20, 240}

// StudyAnnotation runs Experiment 2 on the Disease A-Z dataset: it
// fine-tunes LM-Human on increasing annotated subsets and finds the point
// where it overtakes THOR.
func StudyAnnotation(ds *datagen.Dataset) *AnnotationStudy {
	study := &AnnotationStudy{
		Dataset:           ds,
		Cost:              datagen.DefaultAnnotationCost(),
		CrossoverSubjects: -1,
	}
	thorRes := runThor(ds, BestTau)
	study.ThorF1 = thorRes.Report.Overall.F1()
	study.ThorStats = thorRes.Stats
	study.ThorEntities = ds.Table.InstanceCount()
	study.ThorWords = tableWords(ds)

	for _, n := range AnnotationSubsets {
		subset := trainSubset(ds, n)
		m := lmHumanFor(ds, n)
		preds := m.Extract(ds.Test.Docs)
		f1 := eval.Evaluate(preds, ds.Test.Gold).Overall.F1()
		point := AnnotationPoint{
			Name:              fmt.Sprintf("LM-Human-%d", n),
			Subjects:          n,
			Docs:              len(subset.Docs),
			Entities:          len(subset.Gold),
			Words:             subset.Words,
			F1:                f1,
			AnnotationSeconds: study.Cost.SecondsForWords(subset.Words),
		}
		study.Points = append(study.Points, point)
		if study.CrossoverSubjects == -1 && f1 > study.ThorF1 {
			study.CrossoverSubjects = n
		}
	}
	return study
}

// trainSubset restricts the training split to its first n subjects.
func trainSubset(ds *datagen.Dataset, n int) datagen.Split {
	if n >= len(ds.Train.Subjects) {
		return ds.Train
	}
	keep := make(map[string]bool, n)
	for _, s := range ds.Train.Subjects[:n] {
		keep[strings.ToLower(s)] = true
	}
	var out datagen.Split
	out.Subjects = append(out.Subjects, ds.Train.Subjects[:n]...)
	for _, d := range ds.Train.Docs {
		if keep[strings.ToLower(d.DefaultSubject)] {
			out.Docs = append(out.Docs, d)
			out.Words += countWords(d.Text)
		}
	}
	out.Gold = ds.Train.GoldFor(keep)
	return out
}

func countWords(s string) int { return len(strings.Fields(s)) }

// tableWords counts the words in the structured table's instances — THOR's
// entire "training data" (Table X lists 14,010 words for the paper's table).
func tableWords(ds *datagen.Dataset) int {
	n := 0
	for _, c := range ds.Table.Schema.Concepts {
		for _, v := range ds.Table.ColumnValues(c) {
			n += countWords(v)
		}
	}
	return n
}

// SubjectsOf lists the distinct subjects in a document set (diagnostics).
func SubjectsOf(docs []segment.Document) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range docs {
		if d.DefaultSubject != "" && !seen[d.DefaultSubject] {
			seen[d.DefaultSubject] = true
			out = append(out, d.DefaultSubject)
		}
	}
	sort.Strings(out)
	return out
}
