package models

import (
	"strings"
	"testing"

	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/schema"
	"thor/internal/segment"
)

// fixture builds a small two-concept world: a table, an embedding space and
// subjects.
type fixture struct {
	table    *schema.Table
	space    *embed.Space
	subjects []string
}

func newFixture() *fixture {
	tab := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	r := tab.AddRow("Acne")
	r.Add("Anatomy", "skin")
	r.Add("Complication", "scarring")
	r2 := tab.AddRow("Tuberculosis")
	r2.Add("Anatomy", "lungs")
	r2.Add("Complication", "empyema")

	sp := embed.NewSpace()
	anatomy := embed.HashVector("c:anatomy")
	compl := embed.HashVector("c:complication")
	addW := func(c embed.Vector, alpha float64, ws ...string) {
		for _, w := range ws {
			sp.Add(w, embed.Blend(c, embed.HashVector("n:"+w), alpha))
		}
	}
	addW(anatomy, 0.7, "skin", "lungs", "liver", "kidney", "anatomy")
	addW(compl, 0.7, "scarring", "empyema", "sepsis", "abscess", "complication")
	return &fixture{table: tab, space: sp, subjects: tab.Subjects()}
}

func docs(texts ...string) []segment.Document {
	out := make([]segment.Document, len(texts))
	for i, t := range texts {
		out[i] = segment.Document{Name: "d", Text: t}
	}
	return out
}

func hasMention(ms []eval.Mention, subject string, c schema.Concept, phrase string) bool {
	want := eval.Mention{Subject: subject, Concept: c, Phrase: phrase}.Normalize()
	for _, m := range ms {
		if m == want {
			return true
		}
	}
	return false
}

func TestBaselineExactMatch(t *testing.T) {
	f := newFixture()
	b := NewBaseline(f.table, f.subjects, nil)
	got := b.Extract(docs("Acne often leads to scarring of the face."))
	if !hasMention(got, "Acne", "Complication", "scarring") {
		t.Errorf("baseline missed dictionary instance: %v", got)
	}
	if !hasMention(got, "Acne", "Disease", "acne") {
		t.Errorf("baseline missed subject instance: %v", got)
	}
}

func TestBaselineNoOOV(t *testing.T) {
	f := newFixture()
	b := NewBaseline(f.table, f.subjects, nil)
	// 'sepsis' is in the embedding cluster but NOT in the table: the exact
	// matcher must not find it (its defining weakness).
	got := b.Extract(docs("Acne can cause sepsis."))
	for _, m := range got {
		if m.Phrase == "sepsis" {
			t.Errorf("baseline matched out-of-dictionary instance: %v", got)
		}
	}
}

func TestBaselineSubjectAttribution(t *testing.T) {
	f := newFixture()
	b := NewBaseline(f.table, f.subjects, nil)
	got := b.Extract(docs("Acne affects the skin. Tuberculosis damages the lungs badly."))
	if !hasMention(got, "Acne", "Anatomy", "skin") {
		t.Errorf("skin should attach to Acne: %v", got)
	}
	if !hasMention(got, "Tuberculosis", "Anatomy", "lungs") {
		t.Errorf("lungs should attach to Tuberculosis: %v", got)
	}
	if hasMention(got, "Acne", "Anatomy", "lungs") {
		t.Errorf("lungs wrongly attributed to Acne: %v", got)
	}
}

func TestBaselineName(t *testing.T) {
	f := newFixture()
	if NewBaseline(f.table, f.subjects, nil).Name() != "Baseline" {
		t.Error("wrong name")
	}
}

func TestLMSDExtractsAndOverpredicts(t *testing.T) {
	f := newFixture()
	m := NewLMSD(f.table, f.space, f.subjects, nil)
	got := m.Extract(docs("Acne affects the liver and may cause sepsis."))
	// The centroid classifier generalizes beyond the dictionary: 'liver'
	// and 'sepsis' are unseen but in-cluster.
	found := 0
	for _, g := range got {
		if g.Phrase == "liver" || g.Phrase == "sepsis" {
			found++
		}
	}
	if found == 0 {
		t.Errorf("LM-SD failed to generalize to in-cluster words: %v", got)
	}
	if m.Name() != "LM-SD" {
		t.Error("wrong name")
	}
}

func TestLMSDDeterministic(t *testing.T) {
	f := newFixture()
	d := docs("Acne affects the liver and may cause sepsis and scarring.")
	a := NewLMSD(f.table, f.space, f.subjects, nil).Extract(d)
	b := NewLMSD(f.table, f.space, f.subjects, nil).Extract(d)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic LM-SD: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("prediction %d differs", i)
		}
	}
}

func TestLMHumanLearnsFromAnnotations(t *testing.T) {
	f := newFixture()
	train := []eval.Mention{
		{Subject: "Tuberculosis", Concept: "Complication", Phrase: "empyema"},
		{Subject: "Tuberculosis", Concept: "Anatomy", Phrase: "lungs"},
	}
	trainDocs := docs("Tuberculosis often causes empyema. It damages the lungs.")
	trainDocs[0].DefaultSubject = "Tuberculosis"
	m := NewLMHuman(train, trainDocs, f.space, f.subjects, nil)
	m.SetRecognition(1.0) // disable the stochastic ceiling for this test
	if m.TrainingSize() != 2 {
		t.Fatalf("training size = %d", m.TrainingSize())
	}
	got := m.Extract(docs("Acne also causes empyema."))
	if !hasMention(got, "Acne", "Complication", "empyema") {
		t.Errorf("LM-Human missed a seen surface form: %v", got)
	}
	if m.Name() != "LM-Human" {
		t.Error("wrong name")
	}
}

func TestLMHumanContextGate(t *testing.T) {
	f := newFixture()
	train := []eval.Mention{{Subject: "Tuberculosis", Concept: "Complication", Phrase: "empyema"}}
	trainDocs := docs("Tuberculosis often causes empyema.")
	trainDocs[0].DefaultSubject = "Tuberculosis"
	m := NewLMHuman(train, trainDocs, f.space, f.subjects, nil)
	m.SetRecognition(1.0)
	if !m.ContextKnown("causes") {
		t.Fatal("context model did not learn the annotated sentence's verb")
	}
	if m.ContextKnown("empyema") {
		t.Error("entity word leaked into the context model")
	}
	// Same entity in an unfamiliar context: rejected.
	got := m.Extract(docs("Acne glossary reference lists empyema."))
	if hasMention(got, "Acne", "Complication", "empyema") {
		t.Errorf("context gate failed to reject unfamiliar context: %v", got)
	}
}

func TestLMHumanMoreTrainingMoreRecall(t *testing.T) {
	f := newFixture()
	small := NewLMHuman(nil, nil, f.space, f.subjects, nil)
	if small.TrainingSize() != 0 {
		t.Error("empty training should retain nothing")
	}
	// With no training the model predicts nothing.
	if got := small.Extract(docs("Acne causes empyema.")); len(got) != 0 {
		t.Errorf("untrained LM-Human predicted: %v", got)
	}
}

func TestGPT4SeededDeterminism(t *testing.T) {
	f := newFixture()
	vocab := map[schema.Concept][]string{"Anatomy": {"skin", "liver"}}
	generic := map[schema.Concept]bool{"Disease": true}
	d := docs("Acne affects the skin and may cause scarring.")
	a := NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 7).Extract(d)
	b := NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 7).Extract(d)
	if len(a) != len(b) {
		t.Fatalf("same seed, different output: %d vs %d", len(a), len(b))
	}
	// A different seed is allowed (and expected, eventually) to differ —
	// the paper's run-to-run inconsistency. We only check it doesn't crash.
	_ = NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 8).Extract(d)
	if NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 7).Name() != "GPT-4" {
		t.Error("wrong name")
	}
}

func TestGPT4WorldKnowledgeGate(t *testing.T) {
	f := newFixture()
	generic := map[schema.Concept]bool{"Anatomy": true}
	vocab := map[schema.Concept][]string{"Anatomy": {"skin", "lungs", "liver"}}
	g := NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 1)
	// 'kidney' is in the embedding cluster but not in the model's world
	// knowledge for the generic concept: it must not be labeled Anatomy.
	got := g.Extract(docs("Acne affects the kidney."))
	if hasMention(got, "Acne", "Anatomy", "kidney") {
		t.Errorf("generic gate failed: %v", got)
	}
}

func TestUniNERZeroCoverageConcept(t *testing.T) {
	f := newFixture()
	vocab := map[schema.Concept][]string{
		"Anatomy":      {"skin", "lungs", "liver"},
		"Complication": {"scarring", "empyema", "sepsis"},
	}
	coverage := map[schema.Concept]float64{"Anatomy": 1.0, "Complication": 0}
	u := NewUniNER(vocab, coverage, f.subjects, nil)
	got := u.Extract(docs("Acne affects the skin and causes scarring and empyema."))
	if !hasMention(got, "Acne", "Anatomy", "skin") {
		t.Errorf("covered concept missed: %v", got)
	}
	for _, m := range got {
		if m.Concept == "Complication" {
			t.Errorf("zero-coverage concept predicted: %v", m)
		}
	}
	if u.Name() != "UniNER" {
		t.Error("wrong name")
	}
}

func TestUniNERContextWindowTruncation(t *testing.T) {
	f := newFixture()
	vocab := map[schema.Concept][]string{"Anatomy": {"skin", "lungs"}}
	coverage := map[schema.Concept]float64{"Anatomy": 1.0}
	u := NewUniNER(vocab, coverage, f.subjects, nil)

	// Put 'lungs' beyond the context window: it must be invisible.
	padding := strings.Repeat("filler words keep coming here endlessly ", 300) // ~2100 words
	d := docs("Acne affects the skin. " + padding + " Tuberculosis damages the lungs.")
	got := u.Extract(d)
	if !hasMention(got, "Acne", "Anatomy", "skin") {
		t.Errorf("in-window mention missed: %v", got)
	}
	for _, m := range got {
		if m.Phrase == "lungs" {
			t.Errorf("mention beyond context window found: %v", got)
		}
	}
}

func TestTruncateToWindow(t *testing.T) {
	short := "a b c"
	if truncateToWindow(short) != short {
		t.Error("short text should be untouched")
	}
	long := strings.Repeat("word ", 3000)
	got := truncateToWindow(long)
	words := len(strings.Fields(got))
	window := float64(UniNERContextWindow)
	limit := int(window / tokensPerWord)
	if words != limit {
		t.Errorf("truncated to %d words, want %d", words, limit)
	}
}

func TestMentionSetDedupAndOrder(t *testing.T) {
	s := newMentionSet()
	s.add(eval.Mention{Subject: "B", Concept: "X", Phrase: "p"})
	s.add(eval.Mention{Subject: "A", Concept: "X", Phrase: "p"})
	s.add(eval.Mention{Subject: "b", Concept: "X", Phrase: "P"}) // dup of first
	s.add(eval.Mention{Subject: "A", Concept: "X", Phrase: ""})  // empty dropped
	got := s.mentions()
	if len(got) != 2 {
		t.Fatalf("mentions = %v", got)
	}
	if got[0].Subject != "a" || got[1].Subject != "b" {
		t.Errorf("not sorted: %v", got)
	}
}

func TestHeadOf(t *testing.T) {
	if headOf("skin cancer") != "cancer" || headOf("") != "" || headOf("x") != "x" {
		t.Error("headOf misbehaves")
	}
}

// Dataset-level determinism: every model must produce identical output on
// repeated construction + extraction over the same documents.
func TestModelsDeterministicOnFixture(t *testing.T) {
	f := newFixture()
	d := docs(
		"Acne affects the skin and causes scarring. Sepsis may follow.",
		"Tuberculosis damages the lungs. Empyema can develop.",
	)
	build := func() []Model {
		vocab := map[schema.Concept][]string{
			"Anatomy":      {"skin", "lungs", "liver"},
			"Complication": {"scarring", "empyema", "sepsis"},
		}
		coverage := map[schema.Concept]float64{"Anatomy": 1, "Complication": 0.5}
		generic := map[schema.Concept]bool{"Disease": true}
		return []Model{
			NewBaseline(f.table, f.subjects, nil),
			NewLMSD(f.table, f.space, f.subjects, nil),
			NewGPT4(f.table.Schema, f.space, generic, vocab, f.subjects, nil, 11),
			NewUniNER(vocab, coverage, f.subjects, nil),
			NewLMHuman([]eval.Mention{{Subject: "Tuberculosis", Concept: "Complication", Phrase: "empyema"}},
				docs("Tuberculosis causes empyema."), f.space, f.subjects, nil),
		}
	}
	a, b := build(), build()
	for i := range a {
		ra, rb := a[i].Extract(d), b[i].Extract(d)
		if len(ra) != len(rb) {
			t.Errorf("%s: nondeterministic length %d vs %d", a[i].Name(), len(ra), len(rb))
			continue
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Errorf("%s: prediction %d differs: %v vs %v", a[i].Name(), j, ra[j], rb[j])
			}
		}
	}
}
