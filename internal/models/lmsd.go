package models

import (
	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// LMSD simulates the paper's LM-SD comparator: a pre-trained language model
// fine-tuned for entity recognition on the structured data alone (rows
// rendered as pseudo-text). It is a genuine trained classifier — a
// prior-weighted nearest-centroid model over phrase embeddings — whose
// training data has exactly the paper's pathology: rows are short,
// context-free, and every "training sentence" contains the subject value
// while the other concepts are sparsely filled. The resulting class priors
// make the model over-predict and skew toward the majority class ('Disease'
// in Table VII: 819 of its 2,421 predictions).
type LMSD struct {
	ext       *extractor
	space     *embed.Space
	centroids map[schema.Concept]embed.Vector
	bias      map[schema.Concept]float64
	order     []schema.Concept
	threshold float64
	flipRate  float64
}

// NewLMSD "fine-tunes" the simulator on the structured table.
func NewLMSD(table *schema.Table, space *embed.Space, subjects []string, lexicon map[string]pos.Tag) *LMSD {
	m := &LMSD{
		ext:       newExtractor(subjects, lexicon),
		space:     space,
		centroids: make(map[schema.Concept]embed.Vector),
		bias:      make(map[schema.Concept]float64),
		threshold: 0.46,
		flipRate:  0.30,
	}
	// Class prior: the number of training examples (rows) in which the
	// concept has a value. The subject concept is present in every row, so
	// data sparsity alone produces the majority-class bias.
	counts := make(map[schema.Concept]int)
	for _, r := range table.Rows {
		counts[table.Schema.Subject]++
		for c, vs := range r.Cells {
			if len(vs) > 0 {
				counts[c]++
			}
		}
	}
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	for _, c := range table.Schema.Concepts {
		var sum embed.Vector
		n := 0
		for _, v := range table.ColumnValues(c) {
			vec := space.PhraseVector(text.Fields(text.NormalizePhrase(v)))
			if vec.Zero() {
				continue
			}
			sum = sum.Add(vec)
			n++
		}
		if n == 0 {
			continue
		}
		m.order = append(m.order, c)
		// Contextless fine-tuning on short structured rows yields a
		// distorted class representation: the learned prototype drifts away
		// from the true concept direction, which is why the paper's LM-SD
		// both misses real mentions and mislabels others despite its strong
		// pre-training.
		m.centroids[c] = embed.Blend(sum.Normalize(), embed.HashVector("lmsd-distort:"+string(c)), 0.40)
		// Prior scaled into an additive score bonus. The quadratic shape
		// concentrates the bonus on the always-present subject column, the
		// source of the majority-class bias the paper reports.
		frac := float64(counts[c]) / float64(maxCount)
		m.bias[c] = 0.30 * frac * frac
	}
	return m
}

// Name implements Model.
func (m *LMSD) Name() string { return "LM-SD" }

// Extract classifies every noun phrase by prior-weighted centroid
// similarity. There is no syntactic refinement and no rejection of generic
// phrases beyond the score threshold — the contextless-training weakness the
// paper measures.
func (m *LMSD) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	for _, doc := range docs {
		for _, sp := range m.ext.scan(doc) {
			for _, ph := range sp.Phrases {
				vec := m.space.PhraseVector(ph.Words)
				if vec.Zero() {
					continue
				}
				// Span-length penalty: contextless fine-tuning never taught
				// the model long entity boundaries, so confidence decays
				// with phrase length — the main reason its recall collapses
				// on the compositional Résumé entities.
				lengthPenalty := 0.07 * float64(len(ph.Words)-1)
				best, second := schema.Concept(""), schema.Concept("")
				bestScore, secondScore := -1.0, -1.0
				for _, c := range m.order {
					cent := m.centroids[c]
					score := embed.CosineAt(&vec, &cent) + m.bias[c] - lengthPenalty
					switch {
					case score > bestScore:
						second, secondScore = best, bestScore
						best, bestScore = c, score
					case score > secondScore:
						second, secondScore = c, score
					}
				}
				_ = secondScore
				if best == "" || bestScore < m.threshold {
					continue
				}
				// Brittle decision boundary: fine-tuning on short,
				// near-duplicate structured rows leaves systematic
				// confusions between neighboring classes; a fixed fraction
				// of decisions lands on the runner-up (often the biased
				// majority class).
				if second != "" && hashFrac("lmsd-flip:"+ph.Text()) < m.flipRate {
					best = second
				}
				out.add(eval.Mention{Subject: sp.Subject, Concept: best, Phrase: ph.Text()})
			}
		}
	}
	return out.mentions()
}
