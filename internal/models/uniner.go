package models

import (
	"strings"

	"thor/internal/ahocorasick"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// UniNERContextWindow is the simulator's hard context length in tokens
// (UniversalNER parses at most 2,048 tokens per prompt; Section VI-A).
const UniNERContextWindow = 2048

// tokensPerWord approximates subword tokenization overhead.
const tokensPerWord = 1.33

// UniNER simulates the UniversalNER comparator: an open-NER model distilled
// from dozens of benchmark datasets. Its knowledge is a pre-training lexicon
// covering each concept only to the extent the public benchmarks do —
// under-represented classes like 'Composition' have zero coverage, exactly
// reproducing the published failure — and its context window truncates long
// documents, losing the CVs at the tail of a bundled Résumé file.
type UniNER struct {
	ext      *extractor
	auto     *ahocorasick.Automaton
	concepts []schema.Concept
	heads    map[string]schema.Concept
}

// NewUniNER builds the pre-training lexicon from the per-concept coverage
// fractions: a deterministic hash selects which vocabulary instances the
// benchmarks "contained".
func NewUniNER(vocab map[schema.Concept][]string, coverage map[schema.Concept]float64,
	subjects []string, lexicon map[string]pos.Tag) *UniNER {
	u := &UniNER{
		ext:   newExtractor(subjects, lexicon),
		heads: make(map[string]schema.Concept),
	}
	var patterns []string
	for c, instances := range vocab {
		cov := coverage[c]
		if cov <= 0 {
			continue
		}
		for _, inst := range instances {
			norm := text.NormalizePhrase(inst)
			if norm == "" || hashFrac("uniner:"+norm) >= cov {
				continue
			}
			patterns = append(patterns, norm)
			u.concepts = append(u.concepts, c)
			// A covered instance also teaches the model its head word, so
			// unseen variants sharing the head are still recognized (the
			// generalization distillation buys).
			if h := headOf(norm); h != "" {
				if _, dup := u.heads[h]; !dup {
					u.heads[h] = c
				}
			}
		}
	}
	u.auto = ahocorasick.NewAutomaton(patterns)
	return u
}

// Name implements Model.
func (u *UniNER) Name() string { return "UniNER" }

// Extract runs lexicon + head matching over each document truncated to the
// context window.
func (u *UniNER) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	for _, doc := range docs {
		truncated := doc
		truncated.Text = truncateToWindow(doc.Text)
		for _, sp := range u.ext.scan(truncated) {
			norm := strings.ToLower(sp.Text)
			for _, m := range u.auto.FindWholeWords(norm) {
				out.add(eval.Mention{
					Subject: sp.Subject,
					Concept: u.concepts[m.Pattern],
					Phrase:  u.auto.Pattern(m.Pattern),
				})
			}
			// Mild head-word generalization: distillation lets the model
			// recognize an unseen variant when its head was frequent in
			// pre-training (a deterministic fraction of heads).
			for _, ph := range sp.Phrases {
				h := headOf(ph.Text())
				if c, ok := u.heads[h]; ok && hashFrac("uniner-head:"+h) < 0.15 {
					out.add(eval.Mention{Subject: sp.Subject, Concept: c, Phrase: ph.Text()})
				}
			}
		}
	}
	return out.mentions()
}

// truncateToWindow cuts the text after UniNERContextWindow tokens' worth of
// words, on a word boundary.
func truncateToWindow(s string) string {
	window := float64(UniNERContextWindow)
	limit := int(window / tokensPerWord)
	fields := strings.Fields(s)
	if len(fields) <= limit {
		return s
	}
	// Find the byte offset of the limit-th word.
	count := 0
	inWord := false
	for i := 0; i < len(s); i++ {
		isSpace := s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r'
		if !isSpace && !inWord {
			count++
			if count > limit {
				return s[:i]
			}
			inWord = true
		} else if isSpace {
			inWord = false
		}
	}
	return s
}

// hashFrac maps a string to a deterministic fraction in [0, 1).
func hashFrac(s string) float64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h%10000) / 10000
}
