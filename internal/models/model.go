package models

import (
	"sort"
	"strings"
	"sync"

	"thor/internal/cow"
	"thor/internal/dep"
	"thor/internal/eval"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/segment"
	"thor/internal/text"
)

// Model is a slot-filling system under evaluation: it reads documents and
// returns conceptualized entity mentions.
type Model interface {
	// Name returns the display name used in the paper's tables.
	Name() string
	// Extract conceptualizes the documents into entity mentions, attributed
	// to subject instances.
	Extract(docs []segment.Document) []eval.Mention
}

// extractor bundles the text substrate every model shares: document
// segmentation by subject instance, POS tagging and noun-phrase extraction.
// Extractors are read-only after construction and scanning is deterministic,
// so instances are pooled by configuration and scans memoized per document:
// an experiment's comparator models all analyze the same test corpus, but
// only the first pays for parsing it.
type extractor struct {
	seg    *segment.Segmenter
	tagger *pos.Tagger
	// scans memoizes scan results per document. Values are shared across
	// models: callers must treat them as immutable.
	scans *cow.Map[string, []sentencePhrases]
}

// The pool is keyed by a content fingerprint of the extractor's inputs; it
// grows with the number of distinct (subjects, lexicon) configurations,
// which is bounded by the number of datasets in play.
var (
	extMu   sync.Mutex
	extPool = map[uint64]*extractor{}
)

func newExtractor(subjects []string, lexicon map[string]pos.Tag) *extractor {
	fp := extractorFP(subjects, lexicon)
	extMu.Lock()
	defer extMu.Unlock()
	if e, ok := extPool[fp]; ok {
		return e
	}
	tg := pos.New()
	if lexicon != nil {
		tg.AddLexicon(lexicon)
	}
	e := &extractor{
		seg:    segment.New(subjects),
		tagger: tg,
		scans:  cow.New[string, []sentencePhrases](),
	}
	extPool[fp] = e
	return e
}

// extractorFP content-hashes an extractor configuration: FNV-1a over the
// ordered subjects combined with an order-independent XOR over the lexicon
// entries (map iteration order must not matter).
func extractorFP(subjects []string, lexicon map[string]pos.Tag) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range subjects {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	var lex uint64
	for w, t := range lexicon {
		eh := uint64(offset64)
		for i := 0; i < len(w); i++ {
			eh ^= uint64(w[i])
			eh *= prime64
		}
		eh ^= uint64(t) + 1
		eh *= prime64
		lex ^= eh
	}
	return h ^ lex ^ uint64(len(lexicon))
}

// sentencePhrases yields each sentence's subject attribution and noun
// phrases.
type sentencePhrases struct {
	Subject string
	Phrases []phrase.Phrase
	// Text is the raw sentence span.
	Text string
	// Content is the sentence's normalized non-stopword words — the part of
	// the span context models consult. Precomputed here so every model
	// sharing the scan reads it instead of re-normalizing the sentence.
	Content []string
}

func (e *extractor) scan(doc segment.Document) []sentencePhrases {
	key := doc.Name + "\x00" + doc.DefaultSubject + "\x00" + doc.Text
	if sps, ok := e.scans.Get(key); ok {
		return sps
	}
	var out []sentencePhrases
	for _, asg := range e.seg.Segment(doc) {
		if asg.Subject == "" {
			continue
		}
		tree := dep.Parse(e.tagger.Tag(asg.Sentence))
		span := doc.Text[asg.Sentence.Start:asg.Sentence.End]
		var content []string
		for _, w := range strings.Fields(text.NormalizePhrase(span)) {
			if !text.IsStopword(w) {
				content = append(content, w)
			}
		}
		out = append(out, sentencePhrases{
			Subject: asg.Subject,
			Phrases: phrase.Extract(tree),
			Text:    span,
			Content: content,
		})
	}
	e.scans.Put(key, out)
	return out
}

// mentionSet deduplicates mentions while preserving first-seen order.
type mentionSet struct {
	seen map[string]bool
	list []eval.Mention
}

func newMentionSet() *mentionSet { return &mentionSet{seen: make(map[string]bool)} }

func (s *mentionSet) add(m eval.Mention) {
	n := m.Normalize()
	if n.Phrase == "" {
		return
	}
	key := n.Subject + "\x00" + string(n.Concept) + "\x00" + n.Phrase
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.list = append(s.list, n)
}

func (s *mentionSet) mentions() []eval.Mention {
	sort.SliceStable(s.list, func(i, j int) bool {
		a, b := s.list[i], s.list[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Concept != b.Concept {
			return a.Concept < b.Concept
		}
		return a.Phrase < b.Phrase
	})
	return s.list
}

// headOf returns the rightmost content word of a normalized phrase.
func headOf(phrase string) string {
	fields := strings.Fields(phrase)
	if len(fields) == 0 {
		return ""
	}
	return fields[len(fields)-1]
}
