// Package models implements the comparator systems of the paper's
// evaluation (Table IV): the exact-matching Baseline and behavioral
// simulators of the four neural systems (LM-SD, LM-Human, GPT-4,
// UniversalNER).
//
// The neural models cannot be reproduced bit-for-bit offline, so each
// simulator is a genuine algorithm over the same substrates (embedding
// space, parser, segmenter) engineered to exhibit the system's *documented*
// behavior: LM-SD's majority-class bias from sparse structured training
// data, LM-Human's high precision that scales with annotated volume, GPT-4's
// hallucination/instability and generic-class strength, and UniNER's
// pre-training coverage gaps plus hard context window. See DESIGN.md,
// "Substitutions".
package models
