package models

import (
	"math/rand"
	"strings"

	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// GPT4 simulates prompt-based zero-shot extraction with a large language
// model. It classifies phrases by similarity to the concept *names* (the
// only schema information a prompt carries) with a lower bar on generic
// world-knowledge classes — and it reproduces the failure modes the paper
// documents for GPT-4 (Section VI-A): run-to-run inconsistency, overlooked
// fine-grained instances, and hallucinated entities that do not occur in the
// input text. All stochastic behavior is driven by the seed, so a given
// "session" is reproducible.
type GPT4 struct {
	ext     *extractor
	space   *embed.Space
	rng     *rand.Rand
	names   map[schema.Concept]embed.Vector
	generic map[schema.Concept]bool
	order   []schema.Concept
	// vocab supplies hallucination material: plausible instances the model
	// "remembers" even when they are absent from the text.
	vocab map[schema.Concept][]string
	// worldHeads holds the head words of generic-concept instances — the
	// memorized world knowledge (real universities, companies, people) that
	// makes GPT-4 precise on generic classes.
	worldHeads map[string]bool

	// Behavior rates; see NewGPT4.
	dropRate        float64
	fineGrainedMiss float64
	hallucinateRate float64
}

// NewGPT4 builds the zero-shot simulator for a schema. vocab (may be nil)
// provides hallucination material; generic marks concepts whose instances
// are common world knowledge.
func NewGPT4(sch schema.Schema, space *embed.Space, generic map[schema.Concept]bool,
	vocab map[schema.Concept][]string, subjects []string, lexicon map[string]pos.Tag, seed int64) *GPT4 {
	g := &GPT4{
		ext:             newExtractor(subjects, lexicon),
		space:           space,
		rng:             rand.New(rand.NewSource(seed)),
		names:           make(map[schema.Concept]embed.Vector),
		generic:         generic,
		vocab:           vocab,
		dropRate:        0.28,
		fineGrainedMiss: 0.50,
		hallucinateRate: 0.90,
	}
	g.worldHeads = make(map[string]bool)
	for _, c := range sch.Concepts {
		vec := space.PhraseVector(strings.Fields(text.NormalizePhrase(string(c))))
		if vec.Zero() {
			continue
		}
		g.order = append(g.order, c)
		g.names[c] = vec
		if generic[c] {
			for _, inst := range vocab[c] {
				if h := headOf(text.NormalizePhrase(inst)); h != "" {
					g.worldHeads[h] = true
				}
			}
		}
	}
	return g
}

// Name implements Model.
func (g *GPT4) Name() string { return "GPT-4" }

// Extract runs the zero-shot prompt simulation over the documents.
func (g *GPT4) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	for _, doc := range docs {
		lastSubject := ""
		for _, sp := range g.ext.scan(doc) {
			lastSubject = sp.Subject
			for _, ph := range sp.Phrases {
				// Fine-grained misses: short single-word mentions slip
				// through the attention bottleneck.
				if len(ph.Words) == 1 && g.rng.Float64() < g.fineGrainedMiss {
					continue
				}
				// Inconsistency: a fraction of detections vanish per run.
				if g.rng.Float64() < g.dropRate {
					continue
				}
				c, ok := g.classify(ph.Words)
				if !ok {
					continue
				}
				// Schema drift: the model occasionally ignores the prompt's
				// label set and answers with a different category, which the
				// paper had to police manually.
				if g.rng.Float64() < 0.15 {
					c = g.order[g.rng.Intn(len(g.order))]
				}
				out.add(eval.Mention{Subject: sp.Subject, Concept: c, Phrase: ph.Text()})
			}
		}
		// Hallucination: after reading a document the model emits a few
		// plausible entities that never occurred in it.
		if lastSubject != "" && len(g.order) > 0 && g.vocab != nil {
			n := 0
			for g.rng.Float64() < g.hallucinateRate && n < 8 {
				n++
				c := g.order[g.rng.Intn(len(g.order))]
				pool := g.vocab[c]
				if len(pool) == 0 {
					continue
				}
				out.add(eval.Mention{
					Subject: lastSubject,
					Concept: c,
					Phrase:  pool[g.rng.Intn(len(pool))],
				})
			}
		}
	}
	return out.mentions()
}

// classify scores the phrase against each concept name; generic concepts
// get a lower acceptance bar (GPT-4 knows people, places and organizations
// far better than domain-specific categories).
func (g *GPT4) classify(words []string) (schema.Concept, bool) {
	vec := g.space.PhraseVector(words)
	if vec.Zero() {
		return "", false
	}
	best, bestScore := schema.Concept(""), 0.0
	for _, c := range g.order {
		name := g.names[c]
		score := embed.CosineAt(&vec, &name)
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	if best == "" {
		return "", false
	}
	bar := 0.75
	if g.generic[best] {
		// Generic classes are decided by memorized world knowledge: the
		// model must actually know the entity, but then needs far less
		// contextual evidence.
		if !g.worldHeads[headOf(strings.Join(words, " "))] {
			return "", false
		}
		bar = 0.40
	}
	if bestScore < bar {
		return "", false
	}
	return best, true
}
