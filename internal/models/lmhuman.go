package models

import (
	"math"
	"sort"
	"strings"

	"thor/internal/ahocorasick"
	"thor/internal/cow"
	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// LMHuman simulates the paper's best-case comparator: a language model
// fine-tuned on manually annotated, contextually rich text. The simulator is
// a genuine supervised learner with two trained components:
//
//   - an entity memory — the annotated mentions, indexed by surface form and
//     head word — whose coverage grows with annotation volume, driving the
//     Table X scaling curve, and
//   - a context model — the vocabulary of sentences that carried annotations
//     during training. Sentences resembling unannotated contexts are
//     rejected, which is why the real LM-Human keeps precision high (0.83)
//     where weakly supervised systems pick up spurious mentions.
//
// Its recall ceiling reproduces the paper's observation that even the ideal
// fine-tuned LM misses a sizable share of mentions (R=0.56): each surface
// form has a fixed, deterministic recognition outcome.
type LMHuman struct {
	ext        *extractor
	space      *embed.Space
	examples   []trainExample
	headIndex  map[string][]int
	posContext map[string]bool
	threshold  float64
	// recognition is the per-surface-form recognition probability realized
	// deterministically by hash.
	recognition float64
	// exampleMat holds the example vectors as a pruned-sweep matrix (rows
	// parallel to examples), replacing the brute-force nearest-neighbor scan
	// of the similarity path with a bit-identical bounded sweep.
	exampleMat *embed.Matrix
	// decisions memoizes the per-surface-form outcome (recognition draw and
	// classification), both deterministic functions of the phrase.
	decisions *cow.Map[string, lmhDecision]
}

// lmhDecision is the memoized per-phrase outcome: whether the surface form
// clears the recognition ceiling and, if so, how classify labels it.
type lmhDecision struct {
	recognized bool
	concept    schema.Concept
	ok         bool
}

type trainExample struct {
	phrase  string
	concept schema.Concept
	vec     embed.Vector
}

// NewLMHuman "fine-tunes" the simulator on annotated training mentions and
// their source documents (used to learn the positive-context vocabulary).
// Passing a subset of the training data reproduces the Table X
// annotation-volume sweep.
func NewLMHuman(train []eval.Mention, trainDocs []segment.Document, space *embed.Space,
	subjects []string, lexicon map[string]pos.Tag) *LMHuman {
	m := &LMHuman{
		ext:         newExtractor(subjects, lexicon),
		space:       space,
		headIndex:   make(map[string][]int),
		posContext:  make(map[string]bool),
		threshold:   0.85,
		recognition: 0.66,
	}
	seen := make(map[string]bool)
	var patterns []string
	bySubject := make(map[string]map[string]bool) // subject -> gold phrases
	for _, g := range train {
		g = g.Normalize()
		if g.Phrase == "" {
			continue
		}
		if bySubject[g.Subject] == nil {
			bySubject[g.Subject] = make(map[string]bool)
		}
		bySubject[g.Subject][g.Phrase] = true
		key := string(g.Concept) + "\x00" + g.Phrase
		if seen[key] {
			continue
		}
		seen[key] = true
		vec := space.PhraseVectorCached(g.Phrase)
		if vec.Zero() {
			continue
		}
		idx := len(m.examples)
		m.examples = append(m.examples, trainExample{phrase: g.Phrase, concept: g.Concept, vec: vec})
		patterns = append(patterns, g.Phrase)
		if h := headOf(g.Phrase); h != "" {
			m.headIndex[h] = append(m.headIndex[h], idx)
		}
	}
	m.learnContexts(trainDocs, patterns, bySubject)
	// Recognition reliability follows a power-law learning curve in the
	// number of distinct annotated examples — the Table X behavior: a model
	// fine-tuned on a single subject's documents recovers only a fraction
	// of the mentions its fully trained counterpart does. The exponent and
	// reference size are calibrated so a fully annotated Disease A-Z corpus
	// reaches the paper's LM-Human operating point.
	n := float64(len(m.examples))
	q := 0.66 * math.Pow(n/1900, 0.18)
	if q > 0.72 {
		q = 0.72
	}
	m.recognition = q
	vecs := make([]embed.Vector, len(m.examples))
	for i := range m.examples {
		vecs[i] = m.examples[i].vec
	}
	m.exampleMat = embed.NewMatrix(embed.NewBasis(vecs), vecs)
	m.decisions = cow.New[string, lmhDecision]()
	return m
}

// learnContexts scans the training documents: every sentence containing a
// mention that is annotated *for that document's subject* contributes its
// content words to the positive-context vocabulary (the BIO tagger's learned
// notion of "a sentence that carries entities"). Sentences that merely
// mention a phrase annotated elsewhere — the trap contexts — stay negative.
func (m *LMHuman) learnContexts(docs []segment.Document, patterns []string, bySubject map[string]map[string]bool) {
	if len(docs) == 0 || len(patterns) == 0 {
		return
	}
	auto := ahocorasick.NewAutomaton(patterns)
	// Segment the training documents by their own subjects, which need not
	// overlap with the evaluation subjects.
	trainSubjects := make([]string, 0, len(bySubject))
	for s := range bySubject {
		trainSubjects = append(trainSubjects, s)
	}
	sort.Strings(trainSubjects)
	trainSeg := segment.New(trainSubjects)
	entityWords := make(map[string]bool)
	var matches []ahocorasick.Match
	for _, doc := range docs {
		for _, asg := range trainSeg.Segment(doc) {
			gold := bySubject[strings.ToLower(asg.Subject)]
			if gold == nil {
				continue
			}
			sent := asg.Sentence
			// The automaton lowercases internally (ASCII-exactly, matching
			// the normalized gold phrases), so the raw span is searched
			// without a per-sentence lowered copy.
			span := doc.Text[sent.Start:sent.End]
			annotated := false
			matches = auto.AppendWholeWords(matches[:0], span)
			for _, match := range matches {
				if !gold[auto.Pattern(match.Pattern)] {
					continue
				}
				if !annotated {
					annotated = true
					clear(entityWords)
				}
				for _, w := range strings.Fields(auto.Pattern(match.Pattern)) {
					entityWords[w] = true
				}
			}
			if !annotated {
				continue
			}
			// Only the sentence's *context* words count — the entity words
			// themselves belong to the mention, not to what the tagger
			// learns about entity-bearing sentences.
			for _, w := range sent.Words() {
				if !text.IsStopword(w) && !entityWords[w] {
					m.posContext[w] = true
				}
			}
		}
	}
}

// Name implements Model.
func (m *LMHuman) Name() string { return "LM-Human" }

// TrainingSize returns the number of distinct training examples retained.
func (m *LMHuman) TrainingSize() int { return len(m.examples) }

// Extract labels recognized phrases that occur in positive-looking contexts.
func (m *LMHuman) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	var hits []string
	for _, doc := range docs {
		for _, sp := range m.ext.scan(doc) {
			hits = m.positiveHits(sp.Content, hits[:0])
			for _, ph := range sp.Phrases {
				norm := text.NormalizePhrase(ph.Text())
				if norm == "" {
					continue
				}
				d := m.decide(norm)
				// Recognition ceiling: a fixed fraction of surface forms is
				// simply never recovered, as the paper observes even for
				// the fully supervised model.
				if !d.recognized {
					continue
				}
				if !m.contextLooksPositiveHits(hits, norm) {
					continue
				}
				if d.ok {
					out.add(eval.Mention{Subject: sp.Subject, Concept: d.concept, Phrase: norm})
				}
			}
		}
	}
	return out.mentions()
}

// decide returns the memoized phrase-level outcome: the deterministic
// recognition draw plus the classification. Classification is computed even
// for phrases whose contexts all turn out negative — classify is a pure
// function, so this changes no result, and memoizing the combined outcome
// keeps the per-occurrence cost to one map hit.
func (m *LMHuman) decide(norm string) lmhDecision {
	if d, ok := m.decisions.Get(norm); ok {
		return d
	}
	d := lmhDecision{recognized: hashFrac("lmh-recognize:"+norm) <= m.recognition}
	if d.recognized {
		d.concept, d.ok = m.classify(norm)
	}
	m.decisions.Put(norm, d)
	return d
}

// positiveHits collects the sentence's content words that can satisfy the
// positive-context test for some phrase: those present in the learned
// positive-context vocabulary. It takes the scan's precomputed normalized
// non-stopword words and is computed once per sentence instead of once per
// candidate phrase.
func (m *LMHuman) positiveHits(content []string, buf []string) []string {
	if len(m.posContext) == 0 {
		return buf
	}
	for _, w := range content {
		if m.posContext[w] {
			buf = append(buf, w)
		}
	}
	return buf
}

// contextLooksPositiveHits checks that the sentence shares at least one
// content word outside the candidate phrase with the learned positive
// contexts, given the sentence's precomputed positive words.
func (m *LMHuman) contextLooksPositiveHits(hits []string, phrase string) bool {
	if len(m.posContext) == 0 {
		return true // degenerate training set: no context model
	}
	for _, w := range hits {
		if !phraseHasWord(phrase, w) {
			return true
		}
	}
	return false
}

// phraseHasWord reports whether w occurs as a whole word of the normalized
// phrase. Normalized phrases are single-space joined, so checking space
// boundaries is exactly word-set membership — without allocating the set.
func phraseHasWord(phrase, w string) bool {
	for i := 0; ; {
		j := strings.Index(phrase[i:], w)
		if j < 0 {
			return false
		}
		j += i
		if (j == 0 || phrase[j-1] == ' ') && (j+len(w) == len(phrase) || phrase[j+len(w)] == ' ') {
			return true
		}
		i = j + 1
	}
}

func (m *LMHuman) classify(phrase string) (schema.Concept, bool) {
	// Exact path: an annotated example with the same head word. Exact
	// surface matches win outright; otherwise the head's majority concept
	// across the annotations decides.
	if idxs, ok := m.headIndex[headOf(phrase)]; ok {
		votes := make(map[schema.Concept]int)
		for _, i := range idxs {
			if m.examples[i].phrase == phrase {
				return m.examples[i].concept, true
			}
			votes[m.examples[i].concept]++
		}
		best, bestN := schema.Concept(""), 0
		for c, n := range votes {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		return best, true
	}
	// Similarity path: conservative nearest neighbor. The bounded ArgMax
	// sweep reproduces the brute-force scan exactly: cosines are summed in
	// the same order and only examples strictly above the threshold can win,
	// earliest maximum first.
	vec := m.space.PhraseVectorCached(phrase)
	if vec.Zero() {
		return "", false
	}
	q := m.exampleMat.Basis().Query(vec)
	if i, _ := m.exampleMat.ArgMax(&q, m.threshold); i >= 0 {
		c := m.examples[i].concept
		return c, c != ""
	}
	return "", false
}

// ContextKnown reports whether the word is in the learned positive-context
// vocabulary. Exposed for diagnostics and tests.
func (m *LMHuman) ContextKnown(word string) bool { return m.posContext[word] }

// ContextSize returns the size of the learned positive-context vocabulary.
func (m *LMHuman) ContextSize() int { return len(m.posContext) }

// SetRecognition overrides the per-surface-form recognition probability
// (default 0.66). Exposed for experiments and tests.
func (m *LMHuman) SetRecognition(q float64) {
	m.recognition = q
	m.decisions.Seed(nil) // memoized decisions depend on the old ceiling
}
