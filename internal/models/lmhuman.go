package models

import (
	"math"
	"sort"
	"strings"

	"thor/internal/ahocorasick"
	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// LMHuman simulates the paper's best-case comparator: a language model
// fine-tuned on manually annotated, contextually rich text. The simulator is
// a genuine supervised learner with two trained components:
//
//   - an entity memory — the annotated mentions, indexed by surface form and
//     head word — whose coverage grows with annotation volume, driving the
//     Table X scaling curve, and
//   - a context model — the vocabulary of sentences that carried annotations
//     during training. Sentences resembling unannotated contexts are
//     rejected, which is why the real LM-Human keeps precision high (0.83)
//     where weakly supervised systems pick up spurious mentions.
//
// Its recall ceiling reproduces the paper's observation that even the ideal
// fine-tuned LM misses a sizable share of mentions (R=0.56): each surface
// form has a fixed, deterministic recognition outcome.
type LMHuman struct {
	ext        *extractor
	space      *embed.Space
	examples   []trainExample
	headIndex  map[string][]int
	posContext map[string]bool
	threshold  float64
	// recognition is the per-surface-form recognition probability realized
	// deterministically by hash.
	recognition float64
}

type trainExample struct {
	phrase  string
	concept schema.Concept
	vec     embed.Vector
}

// NewLMHuman "fine-tunes" the simulator on annotated training mentions and
// their source documents (used to learn the positive-context vocabulary).
// Passing a subset of the training data reproduces the Table X
// annotation-volume sweep.
func NewLMHuman(train []eval.Mention, trainDocs []segment.Document, space *embed.Space,
	subjects []string, lexicon map[string]pos.Tag) *LMHuman {
	m := &LMHuman{
		ext:         newExtractor(subjects, lexicon),
		space:       space,
		headIndex:   make(map[string][]int),
		posContext:  make(map[string]bool),
		threshold:   0.85,
		recognition: 0.66,
	}
	seen := make(map[string]bool)
	var patterns []string
	bySubject := make(map[string]map[string]bool) // subject -> gold phrases
	for _, g := range train {
		g = g.Normalize()
		if g.Phrase == "" {
			continue
		}
		if bySubject[g.Subject] == nil {
			bySubject[g.Subject] = make(map[string]bool)
		}
		bySubject[g.Subject][g.Phrase] = true
		key := string(g.Concept) + "\x00" + g.Phrase
		if seen[key] {
			continue
		}
		seen[key] = true
		vec := space.PhraseVector(strings.Fields(g.Phrase))
		if vec.Zero() {
			continue
		}
		idx := len(m.examples)
		m.examples = append(m.examples, trainExample{phrase: g.Phrase, concept: g.Concept, vec: vec})
		patterns = append(patterns, g.Phrase)
		if h := headOf(g.Phrase); h != "" {
			m.headIndex[h] = append(m.headIndex[h], idx)
		}
	}
	m.learnContexts(trainDocs, patterns, bySubject)
	// Recognition reliability follows a power-law learning curve in the
	// number of distinct annotated examples — the Table X behavior: a model
	// fine-tuned on a single subject's documents recovers only a fraction
	// of the mentions its fully trained counterpart does. The exponent and
	// reference size are calibrated so a fully annotated Disease A-Z corpus
	// reaches the paper's LM-Human operating point.
	n := float64(len(m.examples))
	q := 0.66 * math.Pow(n/1900, 0.18)
	if q > 0.72 {
		q = 0.72
	}
	m.recognition = q
	return m
}

// learnContexts scans the training documents: every sentence containing a
// mention that is annotated *for that document's subject* contributes its
// content words to the positive-context vocabulary (the BIO tagger's learned
// notion of "a sentence that carries entities"). Sentences that merely
// mention a phrase annotated elsewhere — the trap contexts — stay negative.
func (m *LMHuman) learnContexts(docs []segment.Document, patterns []string, bySubject map[string]map[string]bool) {
	if len(docs) == 0 || len(patterns) == 0 {
		return
	}
	auto := ahocorasick.NewAutomaton(patterns)
	// Segment the training documents by their own subjects, which need not
	// overlap with the evaluation subjects.
	trainSubjects := make([]string, 0, len(bySubject))
	for s := range bySubject {
		trainSubjects = append(trainSubjects, s)
	}
	sort.Strings(trainSubjects)
	trainSeg := segment.New(trainSubjects)
	for _, doc := range docs {
		for _, asg := range trainSeg.Segment(doc) {
			gold := bySubject[strings.ToLower(asg.Subject)]
			if gold == nil {
				continue
			}
			sent := asg.Sentence
			span := strings.ToLower(doc.Text[sent.Start:sent.End])
			annotated := false
			entityWords := make(map[string]bool)
			for _, match := range auto.FindWholeWords(span) {
				if !gold[auto.Pattern(match.Pattern)] {
					continue
				}
				annotated = true
				for _, w := range strings.Fields(auto.Pattern(match.Pattern)) {
					entityWords[w] = true
				}
			}
			if !annotated {
				continue
			}
			// Only the sentence's *context* words count — the entity words
			// themselves belong to the mention, not to what the tagger
			// learns about entity-bearing sentences.
			for _, w := range sent.Words() {
				if !text.IsStopword(w) && !entityWords[w] {
					m.posContext[w] = true
				}
			}
		}
	}
}

// Name implements Model.
func (m *LMHuman) Name() string { return "LM-Human" }

// TrainingSize returns the number of distinct training examples retained.
func (m *LMHuman) TrainingSize() int { return len(m.examples) }

// Extract labels recognized phrases that occur in positive-looking contexts.
func (m *LMHuman) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	for _, doc := range docs {
		for _, sp := range m.ext.scan(doc) {
			for _, ph := range sp.Phrases {
				norm := text.NormalizePhrase(ph.Text())
				if norm == "" {
					continue
				}
				// Recognition ceiling: a fixed fraction of surface forms is
				// simply never recovered, as the paper observes even for
				// the fully supervised model.
				if hashFrac("lmh-recognize:"+norm) > m.recognition {
					continue
				}
				if !m.contextLooksPositive(sp.Text, norm) {
					continue
				}
				if c, ok := m.classify(norm); ok {
					out.add(eval.Mention{Subject: sp.Subject, Concept: c, Phrase: norm})
				}
			}
		}
	}
	return out.mentions()
}

// contextLooksPositive checks that the sentence shares at least one content
// word (outside the candidate phrase itself) with the learned positive
// contexts.
func (m *LMHuman) contextLooksPositive(sentence, phrase string) bool {
	if len(m.posContext) == 0 {
		return true // degenerate training set: no context model
	}
	inPhrase := make(map[string]bool)
	for _, w := range strings.Fields(phrase) {
		inPhrase[w] = true
	}
	for _, w := range strings.Fields(text.NormalizePhrase(sentence)) {
		if text.IsStopword(w) || inPhrase[w] {
			continue
		}
		if m.posContext[w] {
			return true
		}
	}
	return false
}

func (m *LMHuman) classify(phrase string) (schema.Concept, bool) {
	// Exact path: an annotated example with the same head word. Exact
	// surface matches win outright; otherwise the head's majority concept
	// across the annotations decides.
	if idxs, ok := m.headIndex[headOf(phrase)]; ok {
		votes := make(map[schema.Concept]int)
		for _, i := range idxs {
			if m.examples[i].phrase == phrase {
				return m.examples[i].concept, true
			}
			votes[m.examples[i].concept]++
		}
		best, bestN := schema.Concept(""), 0
		for c, n := range votes {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		return best, true
	}
	// Similarity path: conservative nearest neighbor.
	vec := m.space.PhraseVector(strings.Fields(phrase))
	if vec.Zero() {
		return "", false
	}
	best, bestSim := schema.Concept(""), m.threshold
	for i := range m.examples {
		if sim := embed.CosineAt(&vec, &m.examples[i].vec); sim > bestSim {
			best, bestSim = m.examples[i].concept, sim
		}
	}
	return best, best != ""
}

// ContextKnown reports whether the word is in the learned positive-context
// vocabulary. Exposed for diagnostics and tests.
func (m *LMHuman) ContextKnown(word string) bool { return m.posContext[word] }

// ContextSize returns the size of the learned positive-context vocabulary.
func (m *LMHuman) ContextSize() int { return len(m.posContext) }

// SetRecognition overrides the per-surface-form recognition probability
// (default 0.66). Exposed for experiments and tests.
func (m *LMHuman) SetRecognition(q float64) { m.recognition = q }
