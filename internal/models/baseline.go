package models

import (
	"strings"

	"thor/internal/ahocorasick"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// Baseline is the traditional entity-recognition comparator of Table IV: an
// Aho–Corasick dictionary matcher whose patterns are the structured-data
// instances. It requires no training and finds every verbatim occurrence of
// a known instance — and nothing else, which is why its recall collapses on
// corpora dominated by out-of-vocabulary entities.
type Baseline struct {
	ext      *extractor
	auto     *ahocorasick.Automaton
	concepts []schema.Concept // parallel to the automaton's patterns
}

// NewBaseline builds the dictionary from every instance in the table
// (including the subject column) and prepares segmentation over the given
// evaluation subjects.
func NewBaseline(table *schema.Table, subjects []string, lexicon map[string]pos.Tag) *Baseline {
	var patterns []string
	var concepts []schema.Concept
	for _, c := range table.Schema.Concepts {
		for _, v := range table.ColumnValues(c) {
			norm := text.NormalizePhrase(v)
			if norm == "" {
				continue
			}
			patterns = append(patterns, norm)
			concepts = append(concepts, c)
		}
	}
	return &Baseline{
		ext:      newExtractor(subjects, lexicon),
		auto:     ahocorasick.NewAutomaton(patterns),
		concepts: concepts,
	}
}

// Name implements Model.
func (b *Baseline) Name() string { return "Baseline" }

// Extract reports every whole-word dictionary occurrence, labeled with the
// pattern's column and attributed to the sentence's subject instance.
func (b *Baseline) Extract(docs []segment.Document) []eval.Mention {
	out := newMentionSet()
	for _, doc := range docs {
		for _, sp := range b.ext.scan(doc) {
			// Dictionary matching runs over the normalized sentence so that
			// case and punctuation differences do not break patterns.
			norm := strings.ToLower(sp.Text)
			for _, m := range b.auto.FindWholeWords(norm) {
				out.add(eval.Mention{
					Subject: sp.Subject,
					Concept: b.concepts[m.Pattern],
					Phrase:  b.auto.Pattern(m.Pattern),
				})
			}
		}
	}
	return out.mentions()
}
