package matcher

import (
	"strings"
	"testing"

	"thor/internal/embed"
	"thor/internal/schema"
)

// incrementalWorld builds a table and space where both non-subject concepts
// produce usable seed clusters.
func incrementalWorld() (*schema.Table, *embed.Space) {
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	table.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	table.AddRow("Tuberculosis").Add("Complication", "skin cancer")
	table.AddRow("Cholera").Add("Anatomy", "small intestine")

	space := embed.NewSpace()
	anatomy := embed.HashVector("it:anatomy")
	complication := embed.HashVector("it:complication")
	add := func(c embed.Vector, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				space.Add(part, embed.Blend(c, embed.HashVector("it-noise:"+part), 0.6))
			}
		}
	}
	add(anatomy, "nervous system", "small intestine", "liver", "brain")
	add(complication, "skin cancer", "tumor", "lesion")
	return table, space
}

// TestCacheIncrementalInvalidation pins the live-table contract of the
// fine-tune cache: after a mutation touching ONE concept's instance set, a
// re-fine-tune through the same cache must reuse the untouched concepts'
// shared seed clusters (pointer-identical seedMemo/seedMat) and rebuild only
// the mutated concept's.
func TestCacheIncrementalInvalidation(t *testing.T) {
	table, space := incrementalWorld()
	cache := NewCache()
	cfg := Config{Tau: 0.6, IncludeSubject: true}

	a, err := cache.FineTune(space, table, cfg)
	if err != nil {
		t.Fatal(err)
	}

	mutated := table.Clone()
	mutated.Row("Tuberculosis").Add("Complication", "meningitis")
	b, err := cache.FineTune(space, mutated, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("whole-matcher cache hit despite a table mutation")
	}

	ca, cb := a.byConcept["Anatomy"], b.byConcept["Anatomy"]
	if ca == nil || cb == nil {
		t.Fatal("Anatomy cluster missing")
	}
	if ca.seedMemo != cb.seedMemo || ca.seedMat != cb.seedMat {
		t.Error("untouched Anatomy concept rebuilt its shared seed cluster after an unrelated mutation")
	}
	da, db := a.byConcept["Disease"], b.byConcept["Disease"]
	if da.seedMemo != db.seedMemo {
		t.Error("untouched subject concept rebuilt its shared seed cluster")
	}

	xa, xb := a.byConcept["Complication"], b.byConcept["Complication"]
	if xa.seedMemo == xb.seedMemo {
		t.Error("mutated Complication concept served a stale shared seed cluster")
	}

	// Results must be exactly what an uncached fine-tune on the mutated
	// table produces: warm reuse is an optimization, never an answer change.
	fresh, err := FineTune(space, mutated, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mutated.Schema.Concepts {
		got, want := b.Representatives(c), fresh.Representatives(c)
		if len(got) != len(want) {
			t.Fatalf("%s: %d representatives cached vs %d fresh", c, len(got), len(want))
		}
		for i := range got {
			if got[i].Phrase != want[i].Phrase || got[i].Seed != want[i].Seed {
				t.Fatalf("%s representative %d: cached %+v fresh %+v", c, i, got[i], want[i])
			}
		}
	}
}
