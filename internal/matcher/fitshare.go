package matcher

import (
	"math"
	"sort"

	"thor/internal/cow"
	"thor/internal/embed"
)

// fitShare is the τ-independent head-fit model for one concept, shared across
// an entire threshold sweep through the Cache. A matcher's fit for a head
// word is the maximum cosine between the head and the cluster's
// representative words — the seed heads plus every expansion neighbor with
// retrieval similarity ≥ τ for some source. A word enters the τ-cut exactly
// when its *best* similarity across sources reaches τ, so ordering the
// deduplicated expansion words by decreasing best similarity makes every
// threshold's representative set a prefix of one sequence, and the fit
// decomposes exactly:
//
//	fit(head, τ) = max( max over seed heads, prefixMax[cut(τ)] )
//
// where prefixMax is the running maximum of cosines down that sequence and
// cut(τ) the prefix length with best similarity ≥ τ. Neither part depends on
// τ, so one screened sweep per head serves the whole sweep — bit-identically:
// a float64 maximum is order-independent, deduplication never changes a
// maximum (duplicates carry equal cosines), and the pruning tiers are
// conservative.
//
// A fitShare belongs to one expansion-entry generation: if a later request
// lowers the cached τ and recomputes longer lists, the new entry carries a
// new share, while matchers built against the old generation keep theirs
// (still exact for their thresholds — a τ-cut names the same word set on
// either generation).
type fitShare struct {
	// headMat holds the seed-head vectors (the τ-independent prefix of the
	// cluster's word list).
	headMat *embed.Matrix
	// expMat holds the deduplicated expansion words, sorted by decreasing
	// bestSim with alphabetical tie-breaks.
	expMat *embed.Matrix
	// bestSim[i] is row i's best retrieval similarity across sources —
	// non-increasing, so cutAt resolves by binary search.
	bestSim []float64
	// prof memoizes per head word the fit profile: prof[0] is the seed-head
	// maximum, prof[1+i] the prefix maximum of cosines through expMat row i.
	prof *cow.Map[string, []float64]
}

// buildFitShare constructs the shared fit model from the concept's seed heads
// and its full cached expansion lists.
func buildFitShare(space *embed.Space, basis *embed.Basis, heads []Representative, lists [][]embed.Neighbor, quant bool) *fitShare {
	s := &fitShare{prof: cow.New[string, []float64]()}
	hv := make([]embed.Vector, len(heads))
	for i := range heads {
		hv[i] = heads[i].Vector
	}
	s.headMat = embed.NewMatrixQuant(basis, hv, quant)
	best := make(map[string]float64)
	var order []string
	for _, l := range lists {
		for _, nb := range l {
			if v, ok := best[nb.Word]; !ok {
				best[nb.Word] = nb.Sim
				order = append(order, nb.Word)
			} else if nb.Sim > v {
				best[nb.Word] = nb.Sim
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if best[order[i]] != best[order[j]] {
			return best[order[i]] > best[order[j]]
		}
		return order[i] < order[j]
	})
	vecs := make([]embed.Vector, len(order))
	s.bestSim = make([]float64, len(order))
	for i, w := range order {
		vecs[i] = space.Lookup(w)
		s.bestSim[i] = best[w]
	}
	s.expMat = embed.NewMatrixQuant(basis, vecs, quant)
	return s
}

// cutAt returns the τ-prefix length: the number of expansion words whose best
// retrieval similarity reaches tau.
func (s *fitShare) cutAt(tau float64) int {
	return sort.Search(len(s.bestSim), func(k int) bool { return s.bestSim[k] < tau })
}

// profile returns the head's fit profile, computing and memoizing it on
// first use. q must be the head's sweep query (non-zero). The sweep starts at
// the largest float64 below the acceptance floor — the same starting point
// the per-τ sweeps use — so sub-floor maxima come back clamped (they are
// consumed only through the `fit < floor` rejection test) while above-floor
// maxima are exact, and the int8 tier and sketch bound skip nearly every
// sub-floor row.
func (s *fitShare) profile(head string, q *embed.Query) []float64 {
	floor := math.Nextafter(acceptFloorBar, 0)
	if p, ok := s.prof.Get(head); ok {
		return p
	}
	p := make([]float64, 1+s.expMat.Len())
	p[0] = s.headMat.Max(q, floor)
	if n := s.expMat.Len(); n > 0 {
		s.expMat.PrefixMaxFloor(q, 0, n, floor, p[1:])
	}
	s.prof.Put(head, p)
	return p
}

// fit returns the exact floored-at-nothing fit for a head under a τ-prefix of
// cut rows: max(seed-head maximum, prefix maximum at cut).
func (s *fitShare) fit(head string, q *embed.Query, cut int) float64 {
	p := s.profile(head, q)
	best := p[0]
	if cut > 0 && p[cut] > best {
		best = p[cut]
	}
	return best
}
