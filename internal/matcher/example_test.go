package matcher_test

import (
	"fmt"

	"thor/internal/embed"
	"thor/internal/matcher"
	"thor/internal/phrase"
	"thor/internal/schema"
)

// ExampleCache shows the fine-tune cache sharing one matcher across
// identical (space, table content, config) requests. The cache keys on the
// table's content fingerprint, so a rebuilt-but-equal table hits too — the
// second FineTune returns the same instance without re-expanding clusters.
func ExampleCache() {
	table := schema.NewTable(schema.NewSchema("Disease", "Complication"))
	table.AddRow("Tuberculosis").Add("Complication", "skin cancer")

	space := embed.NewSpace()
	complication := embed.HashVector("ex:complication")
	for _, w := range []string{"cancer", "cancerous", "non-cancerous", "tumor", "skin"} {
		space.Add(w, embed.Blend(complication, embed.HashVector("ex:cancer-family"), 0.85))
	}

	cache := matcher.NewCache()
	m1, err := cache.FineTune(space, table, matcher.Config{Tau: 0.6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m2, _ := cache.FineTune(space, table.Clone(), matcher.Config{Tau: 0.6})
	fmt.Println("shared instance:", m1 == m2)
	fmt.Println("cached matchers:", cache.Len())

	// Match returns the strongest subphrases per concept, best first.
	cands := m1.Match(phrase.Phrase{Words: []string{"non-cancerous", "tumor"}, HeadWord: "tumor"})
	for _, c := range cands {
		fmt.Printf("%q -> %s (matched %q)\n", c.Phrase, c.Concept, c.Matched)
	}
	// Output:
	// shared instance: true
	// cached matchers: 1
	// "non-cancerous tumor" -> Complication (matched "skin cancer")
	// "non-cancerous" -> Complication (matched "skin cancer")
}
