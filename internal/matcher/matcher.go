package matcher

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"thor/internal/cow"
	"thor/internal/embed"
	"thor/internal/phrase"
	"thor/internal/schema"
	"thor/internal/text"
)

// Representative is one entry in a concept's fine-tuned cluster.
type Representative struct {
	// Phrase is the normalized surface form (an instance or a single word).
	Phrase string
	// Vector is its embedding.
	Vector embed.Vector
	// Seed reports whether it is a known instance from the table (true) or
	// a τ-expansion neighbor (false).
	Seed bool
	// Via names the seed word that admitted a τ-expansion neighbor (empty
	// for seeds themselves).
	Via string
}

// conceptCluster is the fine-tuned model for one concept.
type conceptCluster struct {
	concept schema.Concept
	// seeds are the known instances (full phrases), used to pick c_m.
	seeds []Representative
	// words are the matchable word vectors: content words of the seeds
	// plus τ-expansion neighbors.
	words []Representative
	// seedMat and wordMat are the SoA forms of seeds and words (rows
	// aligned), built once at FineTune time.
	seedMat *embed.Matrix
	wordMat *embed.Matrix
	// byRow maps a ThresholdIndex row to the wordMat row holding the same
	// vocabulary word, for LSH-primed head-fit sweeps. Out-of-vocabulary
	// representative words are simply absent.
	byRow map[int]int
	// seedMemo caches bestSeed per subphrase text.
	seedMemo *cow.Map[string, string]
	// share, when non-nil (cache-backed fine-tune with expansion), resolves
	// head fits through the cross-τ profile instead of a per-τ wordMat sweep;
	// cut is this matcher's τ-prefix length into the shared word sequence.
	share *fitShare
	cut   int
}

// Candidate is one match the matcher proposes for a subphrase.
type Candidate struct {
	// Phrase is the matched subphrase (e.p), normalized.
	Phrase string
	// Concept is the assigned concept (e.C).
	Concept schema.Concept
	// Matched is the concept instance c_m most similar to the subphrase.
	Matched string
	// Sim is the head-word cluster-fit score that selected the concept.
	Sim float64
}

// Config controls fine-tuning and matching.
type Config struct {
	// Tau is the user threshold τ: vocabulary words with similarity ≥ Tau
	// to a seed word become representatives, and a candidate head must fit
	// the cluster with at least (approximately) Tau similarity.
	Tau float64
	// MaxPerPhrase caps the candidates returned per (phrase, concept) pair
	// — syntactic refinement judges between concepts, so every concept
	// keeps its strongest subphrases. Zero means 2.
	MaxPerPhrase int
	// IncludeSubject, when set, also builds a cluster for the subject
	// concept so mentions of other subject instances are conceptualized
	// (the evaluation counts them; slot filling skips them).
	IncludeSubject bool
	// DisableExpansion turns off τ-expansion, keeping only seed words as
	// representatives (ablation: seeds-only matcher).
	DisableExpansion bool
	// DisableQuant turns off the int8-quantized propose tier in every sweep
	// on this matcher's path (cluster matrices and τ-expansion retrieval).
	// Results are bit-identical either way — the tier is a conservative
	// screen, not an approximation — so this is purely a kill switch for
	// ablation and for isolating the tier in benchmarks. The flag is part of
	// every Cache key: toggling it can never serve an entry built under the
	// other setting.
	DisableQuant bool
}

func (c Config) maxPerPhrase() int {
	if c.MaxPerPhrase <= 0 {
		return 2
	}
	return c.MaxPerPhrase
}

// acceptFloorBar is the fixed acceptance bar below. It is also baked into the
// shared cross-τ fit profiles (fitShare): sub-floor prefix maxima are clamped
// to just below it, which changes nothing observable — Match consumes a fit
// only through `fit < acceptFloor` and as the exact Sim of accepted (above-
// floor) candidates — while letting the profile sweep prune as hard as the
// per-τ sweeps did.
const acceptFloorBar = 0.95

// acceptFloor is the minimum head-word cluster fit for a candidate. It is a
// high fixed bar: a candidate's head must effectively *be* one of the
// representative vectors. The user threshold τ therefore acts purely through
// fine-tuning — it decides how far the representative set expands beyond the
// known instances — which is exactly the paper's design: the matcher
// recognizes members of the fine-tuned clusters, and τ trades how inclusive
// those clusters are.
func (c Config) acceptFloor() float64 { return acceptFloorBar }

// Matcher is a fine-tuned semantic similarity matcher. Construct with
// FineTune; it is then safe for concurrent use.
type Matcher struct {
	space     *embed.Space
	cfg       Config
	clusters  []*conceptCluster
	byConcept map[schema.Concept]*conceptCluster
	index     *embed.ThresholdIndex
	basis     *embed.Basis
	// fitMemo caches, per head word, the fit against every cluster (Match
	// scores each head against all clusters anyway, so one miss fills the
	// whole row). Seeded with the seed head words at FineTune time.
	fitMemo *cow.Map[string, []float64]
	// subQueries caches the precomputed sweep query per subphrase text.
	subQueries *cow.Map[string, *embed.Query]
	ctxPool    sync.Pool // *MatchContext, for the context-free Match API
}

// sharedSeeds is the τ-independent part of a concept's fine-tuned model:
// the seed instances from the table, their lexical head words (the prefix of
// the matchable word set), the seed sweep matrix, and the best-seed memo.
// None of it depends on Config, so a Cache shares one instance across an
// entire threshold sweep instead of rebuilding (and re-memoizing) it per τ.
type sharedSeeds struct {
	seeds []Representative
	heads []Representative
	mat   *embed.Matrix
	memo  *cow.Map[string, string]
}

// buildSeedCluster constructs the shared seed model for one concept from its
// table instances. quant selects whether the seed sweep matrix carries the
// int8 propose tier.
func buildSeedCluster(space *embed.Space, basis *embed.Basis, instances []string, quant bool) *sharedSeeds {
	sh := &sharedSeeds{memo: cow.New[string, string]()}
	seenWord := make(map[string]bool)
	seenSeed := make(map[string]bool)
	for _, inst := range instances {
		norm := text.NormalizePhrase(inst)
		if norm == "" || seenSeed[norm] {
			continue
		}
		seenSeed[norm] = true
		vec := space.PhraseVectorCached(norm)
		if vec.Zero() {
			continue
		}
		sh.seeds = append(sh.seeds, Representative{Phrase: norm, Vector: vec, Seed: true})
		// Only the instance's lexical head joins the matchable word set:
		// matching is head-to-head, and admitting modifier words
		// ("follow-up", "severe") as representatives would let modifier
		// fragments of unrelated phrases match the concept.
		if w := headWord(strings.Fields(norm)); w != "" && !seenWord[w] {
			seenWord[w] = true
			sh.heads = append(sh.heads, Representative{Phrase: w, Vector: space.Lookup(w), Seed: true})
		}
	}
	vecs := make([]embed.Vector, len(sh.seeds))
	for i := range sh.seeds {
		vecs[i] = sh.seeds[i].Vector
	}
	sh.mat = embed.NewMatrixQuant(basis, vecs, quant)
	return sh
}

// FineTune builds the matcher for the table's schema and instances
// (MATCHER.FINETUNE in Algorithm 1). The embedding space supplies vectors
// for both seeds and expansion candidates.
func FineTune(space *embed.Space, table *schema.Table, cfg Config) (*Matcher, error) {
	return fineTune(space, table, cfg, nil)
}

// fineTune is FineTune with an optional cache supplying shared τ-independent
// seed clusters.
func fineTune(space *embed.Space, table *schema.Table, cfg Config, cache *Cache) (*Matcher, error) {
	if space == nil || table == nil {
		return nil, fmt.Errorf("matcher: nil space or table")
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("matcher: tau %v outside [0,1]", cfg.Tau)
	}
	idx := space.Index()
	m := &Matcher{
		space:      space,
		cfg:        cfg,
		byConcept:  make(map[schema.Concept]*conceptCluster),
		index:      idx,
		basis:      idx.Basis(),
		fitMemo:    cow.New[string, []float64](),
		subQueries: cow.New[string, *embed.Query](),
	}
	if cache != nil {
		// Sweep queries are τ-independent; share one memo across the sweep.
		m.subQueries = cache.queriesFor(idx)
	}
	quant := !cfg.DisableQuant
	for _, c := range table.Schema.Concepts {
		if c == table.Schema.Subject && !cfg.IncludeSubject {
			continue
		}
		build := func() *sharedSeeds { return buildSeedCluster(space, m.basis, table.ColumnValues(c), quant) }
		var sh *sharedSeeds
		var fp uint64
		if cache != nil {
			// Per-concept keying: the shared seeds, expansion lists and fit
			// profile are pure functions of THIS concept's instance set, so
			// they key on its column fingerprint rather than the whole
			// table's. A live-table mutation that leaves a concept's column
			// untouched then re-fine-tunes through warm entries for it —
			// only the mutated concepts rebuild.
			fp = table.ConceptFingerprint(c)
			sh = cache.seedsFor(idx, fp, c, quant, build)
		} else {
			sh = build()
		}
		if len(sh.seeds) == 0 {
			continue // no usable seeds: the concept cannot be matched
		}
		cluster := &conceptCluster{
			concept:  c,
			seeds:    sh.seeds,
			words:    append([]Representative(nil), sh.heads...),
			seedMat:  sh.mat,
			seedMemo: sh.memo,
		}
		if !cfg.DisableExpansion {
			expandCluster(idx, space, cluster, cfg.Tau, quant, cache, fp)
			if cache != nil {
				if share := cache.fitShareFor(idx, space, fp, c, quant, sh.heads); share != nil {
					cluster.share = share
					cluster.cut = share.cutAt(cfg.Tau)
				}
			}
		}
		m.clusters = append(m.clusters, cluster)
		m.byConcept[c] = cluster
	}
	if len(m.clusters) == 0 {
		return nil, fmt.Errorf("matcher: no concept has usable seed instances")
	}
	m.vectorize()
	m.warmFits()
	m.ctxPool.New = func() any { return m.NewContext() }
	return m, nil
}

// expandCluster adds vocabulary words similar to any seed word (cosine ≥
// tau) as non-seed representatives — the weak-supervision "fine-tuning"
// step. Lower τ expands further into the embedding neighborhood. Retrieval
// goes through the space's threshold index, whose results are identical to
// brute-force Space.Neighbors scans (the int8 tier and LSH propose, exact
// cosine verifies). With a cache, the per-source neighbor lists are shared
// across the whole τ sweep (see Cache.expansionFor): the sources — the seed
// head words — are τ-independent, and a higher-τ list is an exact prefix of
// a lower-τ list, so one retrieval pass serves every threshold bit-identically.
func expandCluster(idx *embed.ThresholdIndex, space *embed.Space, cluster *conceptCluster, tau float64, quant bool, cache *Cache, fp uint64) {
	sources := make([]Representative, len(cluster.words))
	copy(sources, cluster.words)
	seen := make(map[string]bool, len(sources))
	for i := range sources {
		seen[sources[i].Phrase] = true
	}
	var lists [][]embed.Neighbor
	if cache != nil {
		lists = cache.expansionFor(idx, fp, cluster.concept, quant, tau, sources)
	} else {
		lists = expansionLists(idx, sources, tau, quant)
	}
	for si, src := range sources {
		for _, nb := range lists[si] {
			if seen[nb.Word] {
				continue
			}
			seen[nb.Word] = true
			cluster.words = append(cluster.words, Representative{
				Phrase: nb.Word,
				Vector: space.Lookup(nb.Word),
				Via:    src.Phrase,
			})
		}
	}
}

// expansionLists retrieves the τ-neighborhood of every source word, in
// source order. Lists are sorted by decreasing similarity with alphabetical
// tie-breaks (the index contract), which is what makes cross-τ prefix
// sharing exact.
func expansionLists(idx *embed.ThresholdIndex, sources []Representative, tau float64, quant bool) [][]embed.Neighbor {
	lists := make([][]embed.Neighbor, len(sources))
	for i := range sources {
		q := idx.Query(sources[i].Vector)
		lists[i] = idx.NeighborsQueryOpt(&q, tau, quant)
	}
	return lists
}

// vectorize flattens every cluster's word vectors into SoA matrices sharing
// the index's pruning basis, and builds the index-row → cluster-row maps used
// for LSH priming. Seed matrices arrive prebuilt with the shared seed
// cluster.
func (m *Matcher) vectorize() {
	for _, cl := range m.clusters {
		if cl.share != nil {
			// Fits resolve through the shared cross-τ profile: no per-τ word
			// matrix (or LSH row map) to build at all.
			continue
		}
		wordVecs := make([]embed.Vector, len(cl.words))
		cl.byRow = make(map[int]int, len(cl.words))
		for i := range cl.words {
			wordVecs[i] = cl.words[i].Vector
			if r := m.index.RowOf(cl.words[i].Phrase); r >= 0 {
				cl.byRow[r] = i
			}
		}
		cl.wordMat = embed.NewMatrixQuant(m.basis, wordVecs, !m.cfg.DisableQuant)
	}
}

// warmFits sizes the fit memo with a warmup pass over the seed head words —
// the heads every accepting document mention must resemble, and by far the
// most frequently queried keys — so the copy-on-write map starts with a
// right-sized read snapshot instead of merging its way up under load.
func (m *Matcher) warmFits() {
	init := make(map[string][]float64)
	for _, cl := range m.clusters {
		for i := range cl.words {
			if !cl.words[i].Seed {
				break // seed head words precede expansion words
			}
			w := cl.words[i].Phrase
			if _, ok := init[w]; !ok {
				init[w] = m.computeFits(w)
			}
		}
	}
	m.fitMemo.Seed(init)
}

// computeFits scores a head word against every cluster: the maximum cosine
// between the head and the cluster's representative words. Match consumes a
// fit only through the acceptance test `fit < acceptFloor` (rejected) and as
// the exact Sim of accepted candidates, so the sweep starts at the largest
// float64 below the floor and stores sub-floor maxima as 0: accepted fits
// are bit-identical to the brute-force sweep while rejected heads skip
// nearly every dot product. The sweep is primed with true cosines of the
// head's LSH bucket candidates — in-vocabulary heads reach their buckets
// through signatures stored at index build time, with no dot products — so
// a head that *is* a representative (cosine 1) prunes the entire sweep.
// Priming never changes the maximum.
func (m *Matcher) computeFits(head string) []float64 {
	fits := make([]float64, len(m.clusters))
	v := m.space.Lookup(head)
	if v.Zero() {
		return fits
	}
	q := m.basis.Query(v)
	floor := math.Nextafter(m.cfg.acceptFloor(), 0)
	var rows []int
	rowsReady := false
	for ci, cl := range m.clusters {
		if cl.share != nil {
			// Cross-τ path: the shared profile's exact maxima reduce this
			// matcher's fit to max(seed-head max, prefix max at its τ cut) —
			// the same floored value the per-τ wordMat sweep produces.
			if best := cl.share.fit(head, &q, cl.cut); best > floor {
				fits[ci] = best
			}
			continue
		}
		if !rowsReady {
			rowsReady = true
			if r := m.index.RowOf(head); r >= 0 {
				rows = m.index.CandidateRowsOfRow(r, nil)
			} else {
				rows = m.index.CandidateRows(&q, nil)
			}
		}
		init := floor
		for _, r := range rows {
			if li, ok := cl.byRow[r]; ok {
				// The int8 tier screens priming candidates against the
				// running init: a skipped prime could not have raised it,
				// so the final maximum is unchanged.
				if !cl.wordMat.CanExceed(&q, li, init) {
					continue
				}
				if c := cl.wordMat.Cosine(&q, li); c > init {
					init = c
				}
			}
		}
		if f := cl.wordMat.Max(&q, init); f > floor {
			fits[ci] = f
		}
	}
	return fits
}

// headFits returns the per-cluster fit row for a head word, memoized.
func (m *Matcher) headFits(head string) []float64 {
	if fits, ok := m.fitMemo.Get(head); ok {
		return fits
	}
	fits := m.computeFits(head)
	m.fitMemo.Put(head, fits)
	return fits
}

// subQuery returns the precomputed sweep query for a subphrase's normalized
// text, memoized. The phrase embedding itself comes from the space's shared
// phrase-vector memo.
func (m *Matcher) subQuery(subText string) *embed.Query {
	if q, ok := m.subQueries.Get(subText); ok {
		return q
	}
	q := m.basis.Query(m.space.PhraseVectorCached(subText))
	m.subQueries.Put(subText, &q)
	return &q
}

// bestSeed returns the seed instance c_m whose embedding is most similar to
// the subphrase (earliest seed wins ties, as in the sequential sweep).
func (m *Matcher) bestSeed(cl *conceptCluster, subText string) string {
	if s, ok := cl.seedMemo.Get(subText); ok {
		return s
	}
	i, _ := cl.seedMat.ArgMax(m.subQuery(subText), -2.0)
	s := ""
	if i >= 0 {
		s = cl.seeds[i].Phrase
	}
	cl.seedMemo.Put(subText, s)
	return s
}

// Concepts returns the concepts the matcher was fine-tuned for, in schema
// order.
func (m *Matcher) Concepts() []schema.Concept {
	out := make([]schema.Concept, len(m.clusters))
	for i, c := range m.clusters {
		out[i] = c.concept
	}
	return out
}

// Representatives returns the fine-tuned word cluster for a concept (nil if
// the concept is unknown). The slice must not be modified.
func (m *Matcher) Representatives(c schema.Concept) []Representative {
	if cl, ok := m.byConcept[c]; ok {
		return cl.words
	}
	return nil
}

// Seeds returns the seed instances for a concept.
func (m *Matcher) Seeds(c schema.Concept) []Representative {
	if cl, ok := m.byConcept[c]; ok {
		return cl.seeds
	}
	return nil
}

// candKey identifies a (subphrase, concept) pair for deduplication without
// building a composite string key.
type candKey struct {
	phrase  string
	concept schema.Concept
}

// MatchContext carries the per-worker scratch space Match needs — subphrase
// spans, word offsets, the candidate buffer, and the dedup / per-concept-cap
// tables — so repeated Match calls stop allocating them. A context is NOT
// safe for concurrent use: give each worker goroutine its own via
// NewContext. The context-free Matcher.Match draws from an internal pool.
type MatchContext struct {
	m          *Matcher
	spans      []phrase.Span
	offs       []int
	cands      []Candidate
	dedup      map[candKey]bool
	perConcept []int
}

// NewContext returns a fresh scratch context bound to the matcher.
func (m *Matcher) NewContext() *MatchContext {
	return &MatchContext{
		m:          m,
		dedup:      make(map[candKey]bool),
		perConcept: make([]int, len(m.clusters)),
	}
}

// AcquireContext returns a scratch context from the matcher's internal pool.
// Callers that process many phrases (the pipeline's document workers, the
// serving layer's batches) acquire once, reuse across calls, and release
// with ReleaseContext, so steady-state matching allocates no scratch at all.
func (m *Matcher) AcquireContext() *MatchContext {
	return m.ctxPool.Get().(*MatchContext)
}

// ReleaseContext returns a context obtained from AcquireContext to the pool.
// The context must not be used afterwards.
func (m *Matcher) ReleaseContext(c *MatchContext) { m.ctxPool.Put(c) }

// Match proposes candidate entities for a phrase (MATCHER.MATCH in Algorithm
// 1): every subphrase is scored by its lexical head against every concept
// cluster; (subphrase, concept) pairs whose fit reaches the acceptance floor
// become candidates, capped at MaxPerPhrase, strongest first.
func (m *Matcher) Match(p phrase.Phrase) []Candidate {
	ctx := m.AcquireContext()
	out := ctx.Match(p)
	m.ReleaseContext(ctx)
	return out
}

// Match is Matcher.Match running on this context's scratch space. The
// returned slice is freshly allocated and owned by the caller.
func (c *MatchContext) Match(p phrase.Phrase) []Candidate {
	kept := c.MatchBuf(p)
	if len(kept) == 0 {
		return nil
	}
	out := make([]Candidate, len(kept))
	copy(out, kept)
	return out
}

// MatchBuf is Match returning a slice backed by the context's scratch: the
// result is valid only until the next Match/MatchBuf call on this context and
// must not be retained or mutated. It is the zero-allocation form the
// pipeline's hot loop consumes candidates through.
func (c *MatchContext) MatchBuf(p phrase.Phrase) []Candidate {
	m := c.m
	floor := m.cfg.acceptFloor()
	c.spans = phrase.AppendSubphraseSpans(c.spans[:0], p)
	if len(c.spans) == 0 {
		return nil
	}
	// Join the phrase once, and only once a subphrase is actually accepted;
	// every subphrase is then a substring of the join, addressed by
	// precomputed word offsets. Phrases with no accepted subphrase — the
	// overwhelming majority on the serving hot path — never allocate.
	joined := ""
	c.cands = c.cands[:0]
	for _, sp := range c.spans {
		head := headWord(p.Words[sp.Start:sp.End])
		if head == "" {
			continue
		}
		fits := m.headFits(head)
		subText := ""
		for ci, cl := range m.clusters {
			fit := fits[ci]
			if fit < floor {
				continue
			}
			if subText == "" {
				if joined == "" {
					joined = strings.Join(p.Words, " ")
					c.offs = c.offs[:0]
					off := 0
					for _, w := range p.Words {
						c.offs = append(c.offs, off)
						off += len(w) + 1
					}
				}
				subText = joined[c.offs[sp.Start] : c.offs[sp.End-1]+len(p.Words[sp.End-1])]
			}
			c.cands = append(c.cands, Candidate{
				Phrase:  subText,
				Concept: cl.concept,
				Matched: m.bestSeed(cl, subText),
				Sim:     fit,
			})
		}
	}
	if len(c.cands) == 0 {
		return nil
	}
	stableSortBySim(c.cands)
	// Dedupe (phrase, concept) pairs, keeping the strongest, and cap the
	// candidates kept per concept — all on reused scratch tables.
	clear(c.dedup)
	for i := range c.perConcept {
		c.perConcept[i] = 0
	}
	maxPer := m.cfg.maxPerPhrase()
	kept := c.cands[:0]
	for _, cand := range c.cands {
		key := candKey{phrase: cand.Phrase, concept: cand.Concept}
		if c.dedup[key] {
			continue
		}
		c.dedup[key] = true
		ci := m.clusterIndex(cand.Concept)
		if c.perConcept[ci] >= maxPer {
			continue
		}
		c.perConcept[ci]++
		kept = append(kept, cand)
	}
	c.cands = kept
	return kept
}

// clusterIndex returns the position of a concept's cluster in m.clusters.
// Match only calls it for concepts the matcher itself emitted.
func (m *Matcher) clusterIndex(concept schema.Concept) int {
	for i, cl := range m.clusters {
		if cl.concept == concept {
			return i
		}
	}
	return 0
}

// stableSortBySim sorts candidates by decreasing Sim, preserving the input
// order of equals — the same order sort.SliceStable produced, without its
// reflection overhead. Candidate lists are short (a handful per phrase), so
// insertion sort is both stable and fast.
func stableSortBySim(cands []Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].Sim > cands[j-1].Sim; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// headWord returns the rightmost content word of a subphrase — the lexical
// head that determines the phrase's category.
func headWord(words []string) string {
	for i := len(words) - 1; i >= 0; i-- {
		if !text.IsStopword(words[i]) {
			return words[i]
		}
	}
	return ""
}

// Similarity returns the semantic similarity (cosine over phrase embeddings)
// between two phrases — MATCHER.SIMILARITY in Algorithm 1, the e.score_s
// component.
func (m *Matcher) Similarity(a, b string) float64 {
	sim := m.space.Similarity(text.NormalizePhrase(a), text.NormalizePhrase(b))
	if sim < 0 {
		return 0
	}
	return sim
}

// Explanation describes why (or how well) a phrase head fits one concept
// cluster: the best representative, how it entered the cluster, and the
// similarity. Explanations make slot fills auditable.
type Explanation struct {
	// Concept is the cluster being explained.
	Concept schema.Concept
	// Fit is the head-word cluster fit used for acceptance.
	Fit float64
	// BestRep is the representative word closest to the head.
	BestRep Representative
	// Accepted reports whether the fit clears the acceptance floor.
	Accepted bool
}

// Explain scores the phrase's head against every cluster and reports the
// per-concept evidence, strongest first.
func (m *Matcher) Explain(p phrase.Phrase) []Explanation {
	head := headWord(p.Words)
	if head == "" {
		return nil
	}
	v := m.space.Lookup(head)
	q := m.basis.Query(v)
	floor := m.cfg.acceptFloor()
	var out []Explanation
	for _, cl := range m.clusters {
		best, bestSim := Representative{}, -2.0
		if !v.Zero() {
			if i, sim := cl.wordMat.ArgMax(&q, -2.0); i >= 0 {
				bestSim, best = sim, cl.words[i]
			}
		}
		if bestSim < 0 {
			bestSim = 0
		}
		out = append(out, Explanation{
			Concept:  cl.concept,
			Fit:      bestSim,
			BestRep:  best,
			Accepted: bestSim >= floor,
		})
	}
	stableSortByFit(out)
	return out
}

func stableSortByFit(out []Explanation) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Fit > out[j-1].Fit; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
