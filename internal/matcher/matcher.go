// Package matcher implements THOR's semantic similarity matcher (Section
// IV-A/IV-B of the paper): a weakly supervised entity matcher fine-tuned from
// the integrated table's own instances, with no annotated text.
//
// Fine-tuning associates each concept with a set of representative vectors:
// the embeddings of the concept's known instances (seeds, from R.C) and of
// their content words, plus every vocabulary word whose similarity to a seed
// word reaches the user threshold τ. Matching scores a candidate subphrase by
// its lexical head — the rightmost content word, which determines the
// phrase's category — against the representative cluster, and reports the
// best-matching seed instance c_m for syntactic refinement.
//
// τ therefore controls both how far the cluster expands beyond the known
// instances and how close a head must be to count as a match: τ=1.0 accepts
// only heads that coincide with known-instance words (precision-oriented),
// while τ=0.5 reaches deep into the embedding neighborhood
// (recall-oriented), reproducing the trade-off of Table V.
package matcher

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"thor/internal/embed"
	"thor/internal/phrase"
	"thor/internal/schema"
	"thor/internal/text"
)

// Representative is one entry in a concept's fine-tuned cluster.
type Representative struct {
	// Phrase is the normalized surface form (an instance or a single word).
	Phrase string
	// Vector is its embedding.
	Vector embed.Vector
	// Seed reports whether it is a known instance from the table (true) or
	// a τ-expansion neighbor (false).
	Seed bool
	// Via names the seed word that admitted a τ-expansion neighbor (empty
	// for seeds themselves).
	Via string
}

// conceptCluster is the fine-tuned model for one concept.
type conceptCluster struct {
	concept schema.Concept
	// seeds are the known instances (full phrases), used to pick c_m.
	seeds []Representative
	// words are the matchable word vectors: content words of the seeds
	// plus τ-expansion neighbors.
	words []Representative
	// fitMemo caches head-word fit scores; guarded by memoMu so Match is
	// safe under the pipeline's parallel document workers.
	memoMu  sync.RWMutex
	fitMemo map[string]float64
}

// Candidate is one match the matcher proposes for a subphrase.
type Candidate struct {
	// Phrase is the matched subphrase (e.p), normalized.
	Phrase string
	// Concept is the assigned concept (e.C).
	Concept schema.Concept
	// Matched is the concept instance c_m most similar to the subphrase.
	Matched string
	// Sim is the head-word cluster-fit score that selected the concept.
	Sim float64
}

// Config controls fine-tuning and matching.
type Config struct {
	// Tau is the user threshold τ: vocabulary words with similarity ≥ Tau
	// to a seed word become representatives, and a candidate head must fit
	// the cluster with at least (approximately) Tau similarity.
	Tau float64
	// MaxPerPhrase caps the candidates returned per (phrase, concept) pair
	// — syntactic refinement judges between concepts, so every concept
	// keeps its strongest subphrases. Zero means 2.
	MaxPerPhrase int
	// IncludeSubject, when set, also builds a cluster for the subject
	// concept so mentions of other subject instances are conceptualized
	// (the evaluation counts them; slot filling skips them).
	IncludeSubject bool
	// DisableExpansion turns off τ-expansion, keeping only seed words as
	// representatives (ablation: seeds-only matcher).
	DisableExpansion bool
}

func (c Config) maxPerPhrase() int {
	if c.MaxPerPhrase <= 0 {
		return 2
	}
	return c.MaxPerPhrase
}

// acceptFloor is the minimum head-word cluster fit for a candidate. It is a
// high fixed bar: a candidate's head must effectively *be* one of the
// representative vectors. The user threshold τ therefore acts purely through
// fine-tuning — it decides how far the representative set expands beyond the
// known instances — which is exactly the paper's design: the matcher
// recognizes members of the fine-tuned clusters, and τ trades how inclusive
// those clusters are.
func (c Config) acceptFloor() float64 { return 0.95 }

// Matcher is a fine-tuned semantic similarity matcher. Construct with
// FineTune; it is then safe for concurrent use.
type Matcher struct {
	space    *embed.Space
	cfg      Config
	clusters []*conceptCluster
}

// FineTune builds the matcher for the table's schema and instances
// (MATCHER.FINETUNE in Algorithm 1). The embedding space supplies vectors
// for both seeds and expansion candidates.
func FineTune(space *embed.Space, table *schema.Table, cfg Config) (*Matcher, error) {
	if space == nil || table == nil {
		return nil, fmt.Errorf("matcher: nil space or table")
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("matcher: tau %v outside [0,1]", cfg.Tau)
	}
	m := &Matcher{space: space, cfg: cfg}
	for _, c := range table.Schema.Concepts {
		if c == table.Schema.Subject && !cfg.IncludeSubject {
			continue
		}
		cluster := &conceptCluster{concept: c, fitMemo: make(map[string]float64)}
		seenWord := make(map[string]bool)
		seenSeed := make(map[string]bool)
		for _, inst := range table.ColumnValues(c) {
			norm := text.NormalizePhrase(inst)
			if norm == "" || seenSeed[norm] {
				continue
			}
			seenSeed[norm] = true
			vec := space.PhraseVector(strings.Fields(norm))
			if vec.Zero() {
				continue
			}
			cluster.seeds = append(cluster.seeds, Representative{Phrase: norm, Vector: vec, Seed: true})
			// Only the instance's lexical head joins the matchable word
			// set: matching is head-to-head, and admitting modifier words
			// ("follow-up", "severe") as representatives would let
			// modifier fragments of unrelated phrases match the concept.
			if w := headWord(strings.Fields(norm)); w != "" && !seenWord[w] {
				seenWord[w] = true
				cluster.words = append(cluster.words, Representative{Phrase: w, Vector: space.Lookup(w), Seed: true})
			}
		}
		if len(cluster.seeds) == 0 {
			continue // no usable seeds: the concept cannot be matched
		}
		if !cfg.DisableExpansion {
			expandCluster(space, cluster, cfg.Tau, seenWord)
		}
		m.clusters = append(m.clusters, cluster)
	}
	if len(m.clusters) == 0 {
		return nil, fmt.Errorf("matcher: no concept has usable seed instances")
	}
	return m, nil
}

// expandCluster adds vocabulary words similar to any seed word (cosine ≥
// tau) as non-seed representatives — the weak-supervision "fine-tuning"
// step. Lower τ expands further into the embedding neighborhood.
func expandCluster(space *embed.Space, cluster *conceptCluster, tau float64, seen map[string]bool) {
	sources := make([]Representative, len(cluster.words))
	copy(sources, cluster.words)
	for _, src := range sources {
		for _, nb := range space.Neighbors(src.Vector, tau) {
			if seen[nb.Word] {
				continue
			}
			seen[nb.Word] = true
			cluster.words = append(cluster.words, Representative{
				Phrase: nb.Word,
				Vector: space.Lookup(nb.Word),
				Via:    src.Phrase,
			})
		}
	}
}

// Concepts returns the concepts the matcher was fine-tuned for, in schema
// order.
func (m *Matcher) Concepts() []schema.Concept {
	out := make([]schema.Concept, len(m.clusters))
	for i, c := range m.clusters {
		out[i] = c.concept
	}
	return out
}

// Representatives returns the fine-tuned word cluster for a concept (nil if
// the concept is unknown). The slice must not be modified.
func (m *Matcher) Representatives(c schema.Concept) []Representative {
	for _, cl := range m.clusters {
		if cl.concept == c {
			return cl.words
		}
	}
	return nil
}

// Seeds returns the seed instances for a concept.
func (m *Matcher) Seeds(c schema.Concept) []Representative {
	for _, cl := range m.clusters {
		if cl.concept == c {
			return cl.seeds
		}
	}
	return nil
}

// Match proposes candidate entities for a phrase (MATCHER.MATCH in Algorithm
// 1): every subphrase is scored by its lexical head against every concept
// cluster; (subphrase, concept) pairs whose fit reaches the acceptance floor
// become candidates, capped at MaxPerPhrase, strongest first.
func (m *Matcher) Match(p phrase.Phrase) []Candidate {
	floor := m.cfg.acceptFloor()
	var cands []Candidate
	for _, sub := range phrase.Subphrases(p) {
		head := headWord(sub)
		if head == "" {
			continue
		}
		subText := strings.Join(sub, " ")
		for _, cl := range m.clusters {
			fit := m.headFit(cl, head)
			if fit < floor {
				continue
			}
			cands = append(cands, Candidate{
				Phrase:  subText,
				Concept: cl.concept,
				Matched: m.bestSeed(cl, sub),
				Sim:     fit,
			})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Sim > cands[j].Sim })
	cands = dedupeCandidates(cands)
	// Keep the strongest maxPerPhrase candidates per concept.
	perConcept := make(map[schema.Concept]int)
	kept := cands[:0]
	for _, c := range cands {
		if perConcept[c.Concept] >= m.cfg.maxPerPhrase() {
			continue
		}
		perConcept[c.Concept]++
		kept = append(kept, c)
	}
	return kept
}

// headWord returns the rightmost content word of a subphrase — the lexical
// head that determines the phrase's category.
func headWord(words []string) string {
	for i := len(words) - 1; i >= 0; i-- {
		if !text.IsStopword(words[i]) {
			return words[i]
		}
	}
	return ""
}

// headFit returns the maximum similarity between the head word and the
// cluster's representative words, memoized per cluster.
func (m *Matcher) headFit(cl *conceptCluster, head string) float64 {
	cl.memoMu.RLock()
	fit, ok := cl.fitMemo[head]
	cl.memoMu.RUnlock()
	if ok {
		return fit
	}
	q := m.space.Lookup(head)
	best := 0.0
	if !q.Zero() {
		for i := range cl.words {
			if sim := embed.CosineAt(&q, &cl.words[i].Vector); sim > best {
				best = sim
			}
		}
	}
	cl.memoMu.Lock()
	cl.fitMemo[head] = best
	cl.memoMu.Unlock()
	return best
}

// bestSeed returns the seed instance c_m whose embedding is most similar to
// the whole subphrase.
func (m *Matcher) bestSeed(cl *conceptCluster, sub []string) string {
	q := m.space.PhraseVector(sub)
	bestSeed, bestSim := "", -2.0
	for i := range cl.seeds {
		if sim := embed.CosineAt(&q, &cl.seeds[i].Vector); sim > bestSim {
			bestSim, bestSeed = sim, cl.seeds[i].Phrase
		}
	}
	return bestSeed
}

// dedupeCandidates keeps the strongest candidate per (phrase, concept).
func dedupeCandidates(cands []Candidate) []Candidate {
	seen := make(map[string]bool, len(cands))
	out := cands[:0]
	for _, c := range cands {
		key := c.Phrase + "\x00" + string(c.Concept)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// Similarity returns the semantic similarity (cosine over phrase embeddings)
// between two phrases — MATCHER.SIMILARITY in Algorithm 1, the e.score_s
// component.
func (m *Matcher) Similarity(a, b string) float64 {
	sim := m.space.Similarity(text.NormalizePhrase(a), text.NormalizePhrase(b))
	if sim < 0 {
		return 0
	}
	return sim
}

// Explanation describes why (or how well) a phrase head fits one concept
// cluster: the best representative, how it entered the cluster, and the
// similarity. Explanations make slot fills auditable.
type Explanation struct {
	Concept schema.Concept
	// Fit is the head-word cluster fit used for acceptance.
	Fit float64
	// BestRep is the representative word closest to the head.
	BestRep Representative
	// Accepted reports whether the fit clears the acceptance floor.
	Accepted bool
}

// Explain scores the phrase's head against every cluster and reports the
// per-concept evidence, strongest first.
func (m *Matcher) Explain(p phrase.Phrase) []Explanation {
	head := headWord(p.Words)
	if head == "" {
		return nil
	}
	q := m.space.Lookup(head)
	floor := m.cfg.acceptFloor()
	var out []Explanation
	for _, cl := range m.clusters {
		best, bestSim := Representative{}, -2.0
		if !q.Zero() {
			for i := range cl.words {
				if sim := embed.CosineAt(&q, &cl.words[i].Vector); sim > bestSim {
					bestSim, best = sim, cl.words[i]
				}
			}
		}
		if bestSim < 0 {
			bestSim = 0
		}
		out = append(out, Explanation{
			Concept:  cl.concept,
			Fit:      bestSim,
			BestRep:  best,
			Accepted: bestSim >= floor,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Fit > out[j].Fit })
	return out
}
