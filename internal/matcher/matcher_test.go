package matcher

import (
	"strings"
	"testing"

	"thor/internal/embed"
	"thor/internal/phrase"
	"thor/internal/schema"
)

// testSpace builds an embedding space with two planted concept clusters
// matching the paper's running example: 'Anatomy' around one centroid,
// 'Complication' around another.
func testSpace() *embed.Space {
	s := embed.NewSpace()
	anatomy := embed.HashVector("centroid:anatomy")
	complication := embed.HashVector("centroid:complication")
	addCluster := func(centroid embed.Vector, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				s.Add(part, embed.Blend(centroid, embed.HashVector("noise:"+part), 0.85))
			}
		}
	}
	addCluster(anatomy, "nervous system", "brain", "nerve", "spine", "ear", "lungs")
	addCluster(complication, "cancer", "tumor", "unsteadiness", "empyema", "scarring")
	// "skin" deliberately sits between clusters (cross-concept confusion).
	s.Add("skin", embed.Blend(anatomy, complication, 0.5))
	return s
}

func testTable() *schema.Table {
	t := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	r := t.AddRow("Acoustic Neuroma")
	r.Add("Anatomy", "nervous system")
	r2 := t.AddRow("Tuberculosis")
	r2.Add("Complication", "skin cancer")
	return t
}

func newMatcher(t *testing.T, tau float64, opts ...func(*Config)) *Matcher {
	t.Helper()
	cfg := Config{Tau: tau}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := FineTune(testSpace(), testTable(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFineTuneBuildsClusters(t *testing.T) {
	m := newMatcher(t, 0.7)
	concepts := m.Concepts()
	if len(concepts) != 2 {
		t.Fatalf("concepts = %v", concepts)
	}
	seeds := m.Seeds("Anatomy")
	if len(seeds) != 1 || !seeds[0].Seed || seeds[0].Phrase != "nervous system" {
		t.Errorf("seeds = %+v, want the known instance", seeds)
	}
	reps := m.Representatives("Anatomy")
	if len(reps) == 0 {
		t.Fatal("no representatives for Anatomy")
	}
	// The seed instance's head word comes first.
	if !reps[0].Seed || reps[0].Phrase != "system" {
		t.Errorf("first representative should be the seed head word: %+v", reps[0])
	}
	// τ-expansion must pull in cluster neighbors like 'brain'.
	foundBrain := false
	for _, r := range reps {
		if r.Phrase == "brain" && !r.Seed {
			foundBrain = true
		}
	}
	if !foundBrain {
		t.Errorf("expansion missed 'brain': %+v", reps)
	}
}

func TestFineTuneExpansionShrinksWithTau(t *testing.T) {
	loose := len(newMatcher(t, 0.5).Representatives("Anatomy"))
	strict := len(newMatcher(t, 0.95).Representatives("Anatomy"))
	if strict >= loose {
		t.Errorf("representatives: strict τ=%d should be fewer than loose τ=%d", strict, loose)
	}
}

func TestFineTuneDisableExpansion(t *testing.T) {
	m := newMatcher(t, 0.5, func(c *Config) { c.DisableExpansion = true })
	for _, rep := range m.Representatives("Anatomy") {
		if !rep.Seed {
			t.Errorf("expansion disabled but non-seed representative present: %+v", rep)
		}
	}
}

func TestFineTuneIncludeSubject(t *testing.T) {
	m := newMatcher(t, 0.7, func(c *Config) { c.IncludeSubject = true })
	if len(m.Concepts()) != 3 {
		t.Errorf("IncludeSubject: concepts = %v", m.Concepts())
	}
}

func TestFineTuneErrors(t *testing.T) {
	if _, err := FineTune(nil, testTable(), Config{}); err == nil {
		t.Error("nil space should error")
	}
	if _, err := FineTune(testSpace(), nil, Config{}); err == nil {
		t.Error("nil table should error")
	}
	if _, err := FineTune(testSpace(), testTable(), Config{Tau: 1.5}); err == nil {
		t.Error("tau out of range should error")
	}
	empty := schema.NewTable(schema.NewSchema("Disease", "Anatomy"))
	if _, err := FineTune(testSpace(), empty, Config{Tau: 0.7}); err == nil {
		t.Error("table without seeds should error")
	}
}

func TestMatchNovelInstance(t *testing.T) {
	// 'brain' never appears in the table, but clusters with the Anatomy
	// seed: the matcher must conceptualize it (the OOV capability the
	// Baseline lacks).
	m := newMatcher(t, 0.6)
	cands := m.Match(phrase.Phrase{Words: []string{"brain"}})
	if len(cands) == 0 {
		t.Fatal("no candidates for novel instance 'brain'")
	}
	if cands[0].Concept != "Anatomy" {
		t.Errorf("brain matched to %v, want Anatomy", cands[0].Concept)
	}
	if cands[0].Matched != "nervous system" {
		t.Errorf("c_m = %q, want the seed instance", cands[0].Matched)
	}
}

func TestMatchSubphrases(t *testing.T) {
	// The running example: 'non-cancerous brain tumor' must surface both an
	// Anatomy candidate (via 'brain') and a Complication candidate (via the
	// tumor/cancer material).
	m := newMatcher(t, 0.6, func(c *Config) { c.MaxPerPhrase = 10 })
	cands := m.Match(phrase.Phrase{Words: []string{"non-cancerous", "brain", "tumor"}})
	byConcept := map[schema.Concept]bool{}
	for _, c := range cands {
		byConcept[c.Concept] = true
	}
	if !byConcept["Anatomy"] || !byConcept["Complication"] {
		t.Errorf("expected candidates for both concepts, got %+v", cands)
	}
}

func TestMatchStricterTauFewerMatches(t *testing.T) {
	ph := phrase.Phrase{Words: []string{"brain"}}
	loose := len(newMatcher(t, 0.5).Match(ph))
	strict := len(newMatcher(t, 1.0).Match(ph))
	if strict > loose {
		t.Errorf("stricter tau should not yield more matches: %d > %d", strict, loose)
	}
}

func TestMatchOrderingAndDedupe(t *testing.T) {
	m := newMatcher(t, 0.5, func(c *Config) { c.MaxPerPhrase = 10 })
	cands := m.Match(phrase.Phrase{Words: []string{"brain", "tumor"}})
	for i := 1; i < len(cands); i++ {
		if cands[i].Sim > cands[i-1].Sim {
			t.Errorf("candidates not sorted by similarity: %v", cands)
		}
	}
	seen := map[string]bool{}
	for _, c := range cands {
		key := c.Phrase + "|" + string(c.Concept)
		if seen[key] {
			t.Errorf("duplicate candidate %s", key)
		}
		seen[key] = true
	}
}

func TestMatchEmptyPhrase(t *testing.T) {
	m := newMatcher(t, 0.7)
	if got := m.Match(phrase.Phrase{}); len(got) != 0 {
		t.Errorf("empty phrase produced candidates: %v", got)
	}
}

func TestSimilarityClamped(t *testing.T) {
	m := newMatcher(t, 0.7)
	if s := m.Similarity("brain", "brain"); s < 0.99 {
		t.Errorf("self-similarity = %v", s)
	}
	if s := m.Similarity("brain", "zzzzqqq"); s < 0 {
		t.Errorf("similarity should clamp at 0, got %v", s)
	}
}

func TestExplain(t *testing.T) {
	m := newMatcher(t, 0.6)
	exps := m.Explain(phrase.Phrase{Words: []string{"brain"}})
	if len(exps) != 2 {
		t.Fatalf("explanations = %d, want one per concept", len(exps))
	}
	top := exps[0]
	if top.Concept != "Anatomy" || !top.Accepted {
		t.Errorf("top explanation = %+v, want accepted Anatomy", top)
	}
	// 'brain' entered via τ-expansion: the provenance chain must name the
	// admitting seed word.
	if top.BestRep.Phrase != "brain" || top.BestRep.Seed || top.BestRep.Via == "" {
		t.Errorf("expansion provenance missing: %+v", top.BestRep)
	}
	// Fits are sorted descending.
	for i := 1; i < len(exps); i++ {
		if exps[i].Fit > exps[i-1].Fit {
			t.Error("explanations not sorted by fit")
		}
	}
	if got := m.Explain(phrase.Phrase{}); got != nil {
		t.Errorf("empty phrase explained: %v", got)
	}
}
