package matcher

import (
	"math"
	"strings"
	"testing"

	"thor/internal/datagen"
	"thor/internal/dep"
	"thor/internal/embed"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/text"
)

// This file holds the equivalence property tests: the optimized matcher —
// threshold-index retrieval, SoA matrices with sketch-bound pruning,
// floor-initialized fit sweeps, copy-on-write memos, shared seed clusters —
// must produce *bit-for-bit* the same fine-tuned clusters and the same Match
// candidates (order included) as a plain brute-force implementation built
// from CosineAt and full-vocabulary scans.

// bruteCluster is the reference fine-tuned model for one concept.
type bruteCluster struct {
	concept schema.Concept
	seeds   []Representative
	words   []Representative
}

// bruteFineTune mirrors FineTune with none of the machinery: phrase vectors
// are composed fresh, and τ-expansion is a full-vocabulary Space.Neighbors
// scan per seed head word.
func bruteFineTune(space *embed.Space, table *schema.Table, cfg Config) []*bruteCluster {
	var out []*bruteCluster
	for _, c := range table.Schema.Concepts {
		if c == table.Schema.Subject && !cfg.IncludeSubject {
			continue
		}
		cl := &bruteCluster{concept: c}
		seenWord := map[string]bool{}
		seenSeed := map[string]bool{}
		for _, inst := range table.ColumnValues(c) {
			norm := text.NormalizePhrase(inst)
			if norm == "" || seenSeed[norm] {
				continue
			}
			seenSeed[norm] = true
			vec := space.PhraseVector(strings.Fields(norm))
			if vec.Zero() {
				continue
			}
			cl.seeds = append(cl.seeds, Representative{Phrase: norm, Vector: vec, Seed: true})
			if w := headWord(strings.Fields(norm)); w != "" && !seenWord[w] {
				seenWord[w] = true
				cl.words = append(cl.words, Representative{Phrase: w, Vector: space.Lookup(w), Seed: true})
			}
		}
		if len(cl.seeds) == 0 {
			continue
		}
		if !cfg.DisableExpansion {
			sources := make([]Representative, len(cl.words))
			copy(sources, cl.words)
			for _, src := range sources {
				for _, nb := range space.Neighbors(src.Vector, cfg.Tau) {
					if seenWord[nb.Word] {
						continue
					}
					seenWord[nb.Word] = true
					cl.words = append(cl.words, Representative{
						Phrase: nb.Word,
						Vector: space.Lookup(nb.Word),
						Via:    src.Phrase,
					})
				}
			}
		}
		out = append(out, cl)
	}
	return out
}

// bruteMatch mirrors Match with plain sequential sweeps: the head fit is the
// running maximum of CosineAt over every representative word, and the best
// seed is the same strict-`>` earliest-max sweep over the seed phrases.
func bruteMatch(space *embed.Space, clusters []*bruteCluster, cfg Config, p phrase.Phrase) []Candidate {
	floor := cfg.acceptFloor()
	var cands []Candidate
	for _, sub := range phrase.Subphrases(p) {
		head := headWord(sub)
		if head == "" {
			continue
		}
		hv := space.Lookup(head)
		subText := strings.Join(sub, " ")
		for _, cl := range clusters {
			fit := -2.0
			for i := range cl.words {
				if c := embed.CosineAt(&hv, &cl.words[i].Vector); c > fit {
					fit = c
				}
			}
			if fit < floor {
				continue
			}
			cands = append(cands, Candidate{
				Phrase:  subText,
				Concept: cl.concept,
				Matched: bruteBestSeed(space, cl, subText),
				Sim:     fit,
			})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	stableSortBySim(cands)
	seen := map[candKey]bool{}
	perConcept := map[schema.Concept]int{}
	kept := cands[:0]
	for _, cand := range cands {
		key := candKey{phrase: cand.Phrase, concept: cand.Concept}
		if seen[key] {
			continue
		}
		seen[key] = true
		if perConcept[cand.Concept] >= cfg.maxPerPhrase() {
			continue
		}
		perConcept[cand.Concept]++
		kept = append(kept, cand)
	}
	return kept
}

func bruteBestSeed(space *embed.Space, cl *bruteCluster, subText string) string {
	sv := space.PhraseVector(strings.Fields(subText))
	bestI, best := -1, -2.0
	for i := range cl.seeds {
		if c := embed.CosineAt(&sv, &cl.seeds[i].Vector); c > best {
			best, bestI = c, i
		}
	}
	if bestI < 0 {
		return ""
	}
	return cl.seeds[bestI].Phrase
}

// corpusPhrases runs the real analysis stack (tagger with the dataset
// lexicon, dependency parse, phrase extraction) over a slice of the test
// documents, deduplicating by surface text so the brute sweeps stay cheap.
func corpusPhrases(ds *datagen.Dataset, maxDocs int) []phrase.Phrase {
	tg := pos.New()
	tg.AddLexicon(ds.Lexicon)
	docs := ds.Test.Docs
	if len(docs) > maxDocs {
		docs = docs[:maxDocs]
	}
	seen := map[string]bool{}
	var out []phrase.Phrase
	for _, d := range docs {
		for _, s := range text.SplitSentences(d.Text) {
			for _, ph := range phrase.Extract(dep.Parse(tg.Tag(s))) {
				if txt := ph.Text(); !seen[txt] {
					seen[txt] = true
					out = append(out, ph)
				}
			}
		}
	}
	return out
}

func sameRep(a, b Representative) bool {
	return a.Phrase == b.Phrase && a.Seed == b.Seed && a.Via == b.Via && a.Vector == b.Vector
}

func checkClusterEquivalence(t *testing.T, m *Matcher, ref []*bruteCluster, tau float64) {
	t.Helper()
	concepts := m.Concepts()
	if len(concepts) != len(ref) {
		t.Fatalf("τ=%.1f: %d concepts, reference has %d", tau, len(concepts), len(ref))
	}
	for i, cl := range ref {
		if concepts[i] != cl.concept {
			t.Fatalf("τ=%.1f: concept[%d] = %q, reference %q", tau, i, concepts[i], cl.concept)
		}
		seeds, words := m.Seeds(cl.concept), m.Representatives(cl.concept)
		if len(seeds) != len(cl.seeds) || len(words) != len(cl.words) {
			t.Fatalf("τ=%.1f %s: %d seeds / %d words, reference %d / %d",
				tau, cl.concept, len(seeds), len(words), len(cl.seeds), len(cl.words))
		}
		for j := range seeds {
			if !sameRep(seeds[j], cl.seeds[j]) {
				t.Fatalf("τ=%.1f %s: seed[%d] = %+v, reference %+v", tau, cl.concept, j, seeds[j], cl.seeds[j])
			}
		}
		for j := range words {
			if !sameRep(words[j], cl.words[j]) {
				t.Fatalf("τ=%.1f %s: word[%d] = %q via %q, reference %q via %q",
					tau, cl.concept, j, words[j].Phrase, words[j].Via, cl.words[j].Phrase, cl.words[j].Via)
			}
		}
	}
}

func checkMatchEquivalence(t *testing.T, got, want []Candidate, tau float64, p phrase.Phrase) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("τ=%.1f %q: %d candidates, reference %d\n got: %+v\nwant: %+v",
			tau, p.Text(), len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Phrase != w.Phrase || g.Concept != w.Concept || g.Matched != w.Matched ||
			math.Float64bits(g.Sim) != math.Float64bits(w.Sim) {
			t.Fatalf("τ=%.1f %q: candidate[%d] = %+v, reference %+v", tau, p.Text(), i, g, w)
		}
	}
}

// equivalenceTaus is the ISSUE's sweep: every τ the experiments run at.
var equivalenceTaus = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

func runEquivalence(t *testing.T, ds *datagen.Dataset, maxDocs int) {
	phrases := corpusPhrases(ds, maxDocs)
	if len(phrases) < 20 {
		t.Fatalf("only %d corpus phrases — corpus too small to be meaningful", len(phrases))
	}
	cache := NewCache()
	for _, tau := range equivalenceTaus {
		cfg := Config{Tau: tau}
		ref := bruteFineTune(ds.Space, ds.Table, cfg)
		m, err := FineTune(ds.Space, ds.Table, cfg)
		if err != nil {
			t.Fatalf("τ=%.1f: FineTune: %v", tau, err)
		}
		cached, err := cache.FineTune(ds.Space, ds.Table, cfg)
		if err != nil {
			t.Fatalf("τ=%.1f: Cache.FineTune: %v", tau, err)
		}
		// The int8-quantized propose tier is a conservative screen, so turning
		// it off must change nothing — same clusters, same candidates, same
		// bits. Going through the same cache also exercises the quant-aware
		// seed/expansion keys: the two settings must never share entries.
		noQuant, err := cache.FineTune(ds.Space, ds.Table, Config{Tau: tau, DisableQuant: true})
		if err != nil {
			t.Fatalf("τ=%.1f: Cache.FineTune(DisableQuant): %v", tau, err)
		}
		checkClusterEquivalence(t, m, ref, tau)
		checkClusterEquivalence(t, cached, ref, tau)
		checkClusterEquivalence(t, noQuant, ref, tau)
		ctx := m.NewContext()
		for _, p := range phrases {
			want := bruteMatch(ds.Space, ref, cfg, p)
			checkMatchEquivalence(t, ctx.Match(p), want, tau, p)
			// Pooled-context path, with every memo now warm.
			checkMatchEquivalence(t, m.Match(p), want, tau, p)
			// The cache-shared matcher (shared seed clusters and memos
			// across the τ sweep) must agree too.
			checkMatchEquivalence(t, cached.Match(p), want, tau, p)
			// And so must the quant-disabled matcher, bit for bit.
			checkMatchEquivalence(t, noQuant.Match(p), want, tau, p)
		}
	}
}

// TestEquivalenceDisease asserts, on the Disease A-Z dataset, that indexed
// τ-expansion and pruned head-fit sweeps reproduce the brute-force matcher
// exactly — candidates, similarities and ordering included — at every τ the
// experiments use.
func TestEquivalenceDisease(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweeps are slow")
	}
	runEquivalence(t, datagen.Disease(datagen.DiseaseSeed), 6)
}

// TestEquivalenceResume is the same property on the Résumé dataset.
func TestEquivalenceResume(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweeps are slow")
	}
	runEquivalence(t, datagen.Resume(datagen.ResumeSeed), 6)
}
