package matcher

import (
	"math"
	"testing"

	"thor/internal/phrase"
)

// TestCacheQuantKeySeparation pins the cache-key fix: a Cache must never serve
// a matcher (or any shared seed/expansion entry) built under one quantization
// setting to a config requesting the other. The bug this guards against is
// silent — results are bit-identical either way — so the test asserts the
// *structural* property: distinct instances per setting, each carrying
// matrices in the requested quant state, with same-config requests still
// sharing one instance.
func TestCacheQuantKeySeparation(t *testing.T) {
	space, table := testSpace(), testTable()
	cache := NewCache()
	on, err := cache.FineTune(space, table, Config{Tau: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := cache.FineTune(space, table, Config{Tau: 0.7, DisableQuant: true})
	if err != nil {
		t.Fatal(err)
	}
	if on == off {
		t.Fatal("cache served the same matcher for DisableQuant=false and true")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache.Len() = %d, want 2 (one entry per quant setting)", cache.Len())
	}
	for ci, cl := range on.clusters {
		if !cl.seedMat.QuantEnabled() || !cl.share.headMat.QuantEnabled() || !cl.share.expMat.QuantEnabled() {
			t.Fatalf("%s: quant-on matcher carries a matrix without the int8 tier", cl.concept)
		}
		if cl.share == off.clusters[ci].share {
			t.Fatalf("%s: both quant settings share one fit-share entry", cl.concept)
		}
	}
	for _, cl := range off.clusters {
		if cl.seedMat.QuantEnabled() || cl.share.headMat.QuantEnabled() || cl.share.expMat.QuantEnabled() {
			t.Fatalf("%s: DisableQuant matcher carries a matrix WITH the int8 tier — stale shared seed/expansion entry", cl.concept)
		}
	}
	// Same-config requests still share one instance (the cache's point).
	again, err := cache.FineTune(space, table, Config{Tau: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if again != on {
		t.Fatal("repeat quant-on request did not hit the cached matcher")
	}
	// And the two settings agree on results, bitwise.
	for _, p := range []phrase.Phrase{
		{Words: []string{"nervous", "system"}},
		{Words: []string{"the", "skin", "cancer"}},
		{Words: []string{"severe", "scarring"}},
	} {
		a, b := on.Match(p), off.Match(p)
		if len(a) != len(b) {
			t.Fatalf("%v: quant-on %d candidates, quant-off %d", p.Words, len(a), len(b))
		}
		for i := range a {
			if a[i].Phrase != b[i].Phrase || a[i].Concept != b[i].Concept ||
				a[i].Matched != b[i].Matched || math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
				t.Fatalf("%v: candidate[%d] quant-on %+v, quant-off %+v", p.Words, i, a[i], b[i])
			}
		}
	}
}

// TestCacheExpansionPrefixSharing checks the cross-τ expansion sharing is
// transparent: fine-tuning through one cache at a high τ after a low τ (prefix
// cut of the stored lists) and in the reverse order (recompute at the lower τ)
// must both reproduce the uncached matcher's clusters exactly.
func TestCacheExpansionPrefixSharing(t *testing.T) {
	space, table := testSpace(), testTable()
	taus := []float64{0.5, 0.9, 0.7} // low→high (prefix cut), then between
	for _, order := range [][]float64{taus, {0.9, 0.5, 0.7}} {
		cache := NewCache()
		for _, tau := range order {
			cfg := Config{Tau: tau}
			want, err := FineTune(space, table, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cache.FineTune(space, table, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for ci, cl := range want.clusters {
				gcl := got.clusters[ci]
				if len(gcl.words) != len(cl.words) {
					t.Fatalf("order %v τ=%.1f %s: %d words via cache, %d direct",
						order, tau, cl.concept, len(gcl.words), len(cl.words))
				}
				for i := range cl.words {
					if !sameRep(gcl.words[i], cl.words[i]) {
						t.Fatalf("order %v τ=%.1f %s: word[%d] = %+v via cache, %+v direct",
							order, tau, cl.concept, i, gcl.words[i], cl.words[i])
					}
				}
			}
		}
	}
}

// TestCacheReverseSweepFitEquivalence pins the fit-share generation rule: a
// sweep that lowers τ replaces the cached expansion entry (longer lists, a
// fresh fit profile), while matchers built against an earlier generation keep
// answering through theirs. After the whole descending sweep, every
// generation must still agree with a direct, uncached fine-tune bit-for-bit.
func TestCacheReverseSweepFitEquivalence(t *testing.T) {
	space, table := testSpace(), testTable()
	phrases := []phrase.Phrase{
		{Words: []string{"nervous", "system"}},
		{Words: []string{"the", "skin", "cancer"}},
		{Words: []string{"severe", "scarring"}},
		{Words: []string{"memory", "loss"}},
	}
	cache := NewCache()
	taus := []float64{1.0, 0.8, 0.6, 0.5}
	ms := make([]*Matcher, len(taus))
	for i, tau := range taus {
		m, err := cache.FineTune(space, table, Config{Tau: tau})
		if err != nil {
			t.Fatalf("τ=%.1f: %v", tau, err)
		}
		ms[i] = m
	}
	for i, tau := range taus {
		want, err := FineTune(space, table, Config{Tau: tau})
		if err != nil {
			t.Fatalf("τ=%.1f: %v", tau, err)
		}
		for _, p := range phrases {
			a, b := ms[i].Match(p), want.Match(p)
			if len(a) != len(b) {
				t.Fatalf("τ=%.1f %v: %d candidates via cache, %d direct", tau, p.Words, len(a), len(b))
			}
			for j := range a {
				if a[j].Phrase != b[j].Phrase || a[j].Concept != b[j].Concept ||
					a[j].Matched != b[j].Matched || math.Float64bits(a[j].Sim) != math.Float64bits(b[j].Sim) {
					t.Fatalf("τ=%.1f %v: candidate[%d] = %+v via cache, %+v direct", tau, p.Words, j, a[j], b[j])
				}
			}
		}
	}
}

// TestMatchBufReuse pins the MatchBuf contract: the returned slice is scratch
// that the next call may overwrite, while Match hands out an independent copy.
func TestMatchBufReuse(t *testing.T) {
	m := newMatcher(t, 0.7)
	ctx := m.NewContext()
	p1 := phrase.Phrase{Words: []string{"nervous", "system"}}
	p2 := phrase.Phrase{Words: []string{"skin", "cancer"}}
	buf := ctx.MatchBuf(p1)
	if len(buf) == 0 {
		t.Fatal("no candidates for the seed phrase")
	}
	first := buf[0]
	copied := ctx.Match(p1)
	ctx.MatchBuf(p2) // overwrites the scratch behind buf
	if copied[0] != first {
		t.Fatalf("Match copy mutated by later MatchBuf: %+v vs %+v", copied[0], first)
	}
}
