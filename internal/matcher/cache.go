package matcher

import (
	"sort"
	"sync"

	"thor/internal/cow"
	"thor/internal/embed"
	"thor/internal/schema"
)

// cacheKey identifies a fine-tune result: the space's vocabulary snapshot
// (by index identity — vectors are not hashed, so distinct spaces never
// share an entry, and adding words to a space invalidates its index and with
// it every cached matcher), the knowledge table's content fingerprint, and
// the full matcher configuration.
type cacheKey struct {
	index *embed.ThresholdIndex
	table uint64
	cfg   Config
}

// seedKey identifies a shared τ-independent seed cluster: like cacheKey, but
// per concept and without the threshold — seeds do not depend on it. The
// table component is the CONCEPT's instance-set fingerprint
// (schema.Table.ConceptFingerprint), not the whole table's: a seed cluster
// is a pure function of its own column's values, so a table mutation that
// leaves the column untouched keeps the entry warm (the incremental
// invalidation live tables rely on). The
// quantization setting IS part of the key: the shared seed matrix is built
// with or without the int8 propose tier, so a config toggling
// Config.DisableQuant must never be served an entry built under the other
// setting (results would still be identical, but the toggle would silently
// not apply — the stale-entry hazard TestCacheQuantKeySeparation pins).
type seedKey struct {
	index   *embed.ThresholdIndex
	table   uint64
	concept schema.Concept
	quant   bool
}

// expandKey identifies a shared τ-expansion retrieval: the per-source
// neighbor lists for one concept's seed heads, keyed — like seedKey — by the
// concept's own instance-set fingerprint. τ is deliberately absent —
// lists are stored at the lowest τ requested so far and prefix-cut upward —
// while the quantization setting is present for the same staleness reason as
// in seedKey.
type expandKey struct {
	index   *embed.ThresholdIndex
	table   uint64
	concept schema.Concept
	quant   bool
}

// expandEntry holds one concept's expansion lists, computed at tau (the
// lowest threshold requested so far). Lists are immutable once stored;
// higher-τ requests serve prefix subslices. The entry also owns the
// generation's fitShare — the cross-τ head-fit profile built over exactly
// these lists — created lazily by the first fine-tune that needs it.
type expandEntry struct {
	tau   float64
	lists [][]embed.Neighbor

	shareOnce sync.Once
	share     *fitShare
}

// Cache memoizes fine-tuned matchers. Threshold-sweep experiments fine-tune
// on the same knowledge table over and over — six τ values, repeated across
// comparison, tuning, and annotation runs — and a Matcher is immutable and
// safe for concurrent use after FineTune, so identical (space, table, config)
// requests can share one instance along with all its warmed memos.
//
// The table is keyed by content (schema.Table.Fingerprint), not identity:
// callers that rebuild an equal table still hit. Mutating a table after
// fine-tuning through the cache gives a stale matcher on the old fingerprint
// and a fresh one on the new — never a wrong hit.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*Matcher

	seedMu sync.Mutex
	seeds  map[seedKey]*sharedSeeds

	expMu sync.Mutex
	exps  map[expandKey]*expandEntry

	// queries shares the per-subphrase sweep queries across every matcher
	// fine-tuned against the same vocabulary snapshot: a Query is a pure
	// function of (basis, phrase vector), and the basis is the index's, so the
	// whole τ sweep can reuse one memo instead of rebuilding per threshold.
	queryMu sync.Mutex
	queries map[*embed.ThresholdIndex]*cow.Map[string, *embed.Query]
}

// NewCache returns an empty fine-tune cache, safe for concurrent use.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[cacheKey]*Matcher),
		seeds:   make(map[seedKey]*sharedSeeds),
		exps:    make(map[expandKey]*expandEntry),
		queries: make(map[*embed.ThresholdIndex]*cow.Map[string, *embed.Query]),
	}
}

// queriesFor returns the shared subphrase-query memo for a vocabulary
// snapshot, creating it on first request.
func (c *Cache) queriesFor(index *embed.ThresholdIndex) *cow.Map[string, *embed.Query] {
	c.queryMu.Lock()
	defer c.queryMu.Unlock()
	q, ok := c.queries[index]
	if !ok {
		q = cow.New[string, *embed.Query]()
		c.queries[index] = q
	}
	return q
}

// seedsFor returns the shared seed cluster for (vocabulary snapshot, concept
// instance-set fingerprint, concept, quant tier), building and storing it on
// first request. A
// threshold sweep fine-tunes once per τ, but the seed instances, their sweep
// matrix and the best-seed memo are τ-independent, so every configuration at
// the same quant setting shares one instance — later τ runs start with the
// earlier runs' best-seed memo already warm.
func (c *Cache) seedsFor(index *embed.ThresholdIndex, table uint64, concept schema.Concept, quant bool, build func() *sharedSeeds) *sharedSeeds {
	key := seedKey{index: index, table: table, concept: concept, quant: quant}
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if sh, ok := c.seeds[key]; ok {
		return sh
	}
	sh := build()
	c.seeds[key] = sh
	return sh
}

// expansionFor returns the τ-expansion neighbor lists for a concept's seed
// head words, one list per source in source order, shared across thresholds:
// the sources are τ-independent, and the index returns neighbors sorted by
// decreasing similarity, so the τ' ≥ τ result is exactly the prefix of the
// τ result with Sim ≥ τ'. The cache stores lists at the lowest τ requested
// so far and serves higher thresholds by prefix cut — bit-identical to a
// direct retrieval at that threshold. A request below the stored τ
// recomputes and replaces the entry (a superset of the old one).
func (c *Cache) expansionFor(index *embed.ThresholdIndex, table uint64, concept schema.Concept, quant bool, tau float64, sources []Representative) [][]embed.Neighbor {
	key := expandKey{index: index, table: table, concept: concept, quant: quant}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	e, ok := c.exps[key]
	if !ok || tau < e.tau || len(e.lists) != len(sources) {
		e = &expandEntry{tau: tau, lists: expansionLists(index, sources, tau, quant)}
		c.exps[key] = e
	}
	if tau == e.tau {
		return e.lists
	}
	cut := make([][]embed.Neighbor, len(e.lists))
	for i, list := range e.lists {
		// Lists are sorted by decreasing Sim: the block with Sim ≥ tau is a
		// prefix, found by binary search.
		n := sort.Search(len(list), func(k int) bool { return list[k].Sim < tau })
		cut[i] = list[:n:n]
	}
	return cut
}

// fitShareFor returns the concept's cross-τ fit-share, creating it over the
// cached full expansion lists on first request. Callers must have populated
// the expansion entry via expansionFor first (fineTune's order); the share
// tracks that entry's generation, so matchers that fetched it stay exact even
// if a later lower-τ request replaces the entry. heads must be the concept's
// shared seed heads — identical for every caller of the same key by
// construction.
func (c *Cache) fitShareFor(index *embed.ThresholdIndex, space *embed.Space, table uint64, concept schema.Concept, quant bool, heads []Representative) *fitShare {
	key := expandKey{index: index, table: table, concept: concept, quant: quant}
	c.expMu.Lock()
	e := c.exps[key]
	c.expMu.Unlock()
	if e == nil {
		return nil
	}
	e.shareOnce.Do(func() {
		e.share = buildFitShare(space, index.Basis(), heads, e.lists, quant)
	})
	return e.share
}

// FineTune returns the cached matcher for (space, table content, cfg),
// fine-tuning and storing one on the first request. Errors are not cached.
func (c *Cache) FineTune(space *embed.Space, table *schema.Table, cfg Config) (*Matcher, error) {
	if c == nil {
		return FineTune(space, table, cfg)
	}
	if space == nil || table == nil {
		return FineTune(space, table, cfg) // let FineTune report the error
	}
	key := cacheKey{index: space.Index(), table: table.Fingerprint(), cfg: cfg}
	c.mu.Lock()
	m, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := fineTune(space, table, cfg, c)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Keep the first stored instance if another goroutine raced us, so every
	// caller shares one matcher (and its memos).
	if prev, ok := c.entries[key]; ok {
		m = prev
	} else {
		c.entries[key] = m
	}
	c.mu.Unlock()
	return m, nil
}

// Len returns the number of cached matchers.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
