package matcher

import (
	"sync"

	"thor/internal/embed"
	"thor/internal/schema"
)

// cacheKey identifies a fine-tune result: the space's vocabulary snapshot
// (by index identity — vectors are not hashed, so distinct spaces never
// share an entry, and adding words to a space invalidates its index and with
// it every cached matcher), the knowledge table's content fingerprint, and
// the full matcher configuration.
type cacheKey struct {
	index *embed.ThresholdIndex
	table uint64
	cfg   Config
}

// seedKey identifies a shared τ-independent seed cluster: like cacheKey, but
// per concept and without the configuration — seeds do not depend on it.
type seedKey struct {
	index   *embed.ThresholdIndex
	table   uint64
	concept schema.Concept
}

// Cache memoizes fine-tuned matchers. Threshold-sweep experiments fine-tune
// on the same knowledge table over and over — six τ values, repeated across
// comparison, tuning, and annotation runs — and a Matcher is immutable and
// safe for concurrent use after FineTune, so identical (space, table, config)
// requests can share one instance along with all its warmed memos.
//
// The table is keyed by content (schema.Table.Fingerprint), not identity:
// callers that rebuild an equal table still hit. Mutating a table after
// fine-tuning through the cache gives a stale matcher on the old fingerprint
// and a fresh one on the new — never a wrong hit.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*Matcher

	seedMu sync.Mutex
	seeds  map[seedKey]*sharedSeeds
}

// NewCache returns an empty fine-tune cache, safe for concurrent use.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[cacheKey]*Matcher),
		seeds:   make(map[seedKey]*sharedSeeds),
	}
}

// seedsFor returns the shared seed cluster for (vocabulary snapshot, table
// content, concept), building and storing it on first request. A threshold
// sweep fine-tunes once per τ, but the seed instances, their sweep matrix
// and the best-seed memo are τ-independent, so every configuration shares
// one instance — later τ runs start with the earlier runs' best-seed memo
// already warm.
func (c *Cache) seedsFor(index *embed.ThresholdIndex, table uint64, concept schema.Concept, build func() *sharedSeeds) *sharedSeeds {
	key := seedKey{index: index, table: table, concept: concept}
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if sh, ok := c.seeds[key]; ok {
		return sh
	}
	sh := build()
	c.seeds[key] = sh
	return sh
}

// FineTune returns the cached matcher for (space, table content, cfg),
// fine-tuning and storing one on the first request. Errors are not cached.
func (c *Cache) FineTune(space *embed.Space, table *schema.Table, cfg Config) (*Matcher, error) {
	if c == nil {
		return FineTune(space, table, cfg)
	}
	if space == nil || table == nil {
		return FineTune(space, table, cfg) // let FineTune report the error
	}
	key := cacheKey{index: space.Index(), table: table.Fingerprint(), cfg: cfg}
	c.mu.Lock()
	m, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := fineTune(space, table, cfg, c)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Keep the first stored instance if another goroutine raced us, so every
	// caller shares one matcher (and its memos).
	if prev, ok := c.entries[key]; ok {
		m = prev
	} else {
		c.entries[key] = m
	}
	c.mu.Unlock()
	return m, nil
}

// Len returns the number of cached matchers.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
