// Package matcher implements THOR's semantic similarity matcher (Section
// IV-A/IV-B of the paper): a weakly supervised entity matcher fine-tuned from
// the integrated table's own instances, with no annotated text.
//
// Fine-tuning associates each concept with a set of representative vectors:
// the embeddings of the concept's known instances (seeds, from R.C) and of
// their content words, plus every vocabulary word whose similarity to a seed
// word reaches the user threshold τ. Matching scores a candidate subphrase by
// its lexical head — the rightmost content word, which determines the
// phrase's category — against the representative cluster, and reports the
// best-matching seed instance c_m for syntactic refinement.
//
// τ therefore controls both how far the cluster expands beyond the known
// instances and how close a head must be to count as a match: τ=1.0 accepts
// only heads that coincide with known-instance words (precision-oriented),
// while τ=0.5 reaches deep into the embedding neighborhood
// (recall-oriented), reproducing the trade-off of Table V.
//
// # Performance
//
// Matching is the pipeline's hot path, so the matcher is built around
// precomputed structures whose results are bit-for-bit identical to the
// brute-force definitions above. Each cluster's seed and word vectors are
// flattened into contiguous embed.Matrix slabs at FineTune time, so head-fit
// and best-seed sweeps are cache-friendly dot products with precomputed
// norms and conservative-bound pruning. τ-expansion runs through the space's
// shared ThresholdIndex (LSH propose, exact verify) instead of brute
// vocabulary scans, and the index's LSH buckets also prime head-fit sweeps
// with a strong initial best so the bound prunes harder. Head fits, subphrase
// queries, and best seeds are memoized in read-mostly copy-on-write maps
// (package cow) that cost one atomic load per hit under the pipeline's
// parallel document workers.
package matcher
