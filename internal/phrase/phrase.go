package phrase

import (
	"strings"

	"thor/internal/dep"
	"thor/internal/pos"
	"thor/internal/text"
)

// Phrase is a candidate noun phrase extracted from a sentence.
type Phrase struct {
	// Words are the lower-cased words of the phrase after stop-word
	// stripping, in surface order.
	Words []string
	// Tags are the part-of-speech tags parallel to Words. May be nil when
	// the producer has no tagging (all words are then treated as nominal).
	Tags []pos.Tag
	// HeadWord is the lower-cased lexical head (the rightmost nominal).
	HeadWord string
	// Start and End are byte offsets of the phrase span in the original
	// document (before stop-word stripping the span may be wider; offsets
	// cover the stripped phrase).
	Start, End int
}

// Nominal reports whether the i-th word can head a candidate subphrase: a
// noun/proper-noun/number, or any word when tags are absent.
func (p Phrase) Nominal(i int) bool {
	if p.Tags == nil || i >= len(p.Tags) {
		return true
	}
	t := p.Tags[i]
	return t.IsNominal() || t == pos.NUM
}

// Text returns the normalized phrase string.
func (p Phrase) Text() string { return strings.Join(p.Words, " ") }

// Extract returns the noun phrases of a parsed sentence, in surface order.
// Pronoun-headed phrases are skipped: they carry no conceptual content for
// slot filling.
func Extract(t *dep.Tree) []Phrase {
	var out []Phrase
	seen := make(map[int]bool) // words already consumed by an emitted phrase
	for i := 0; i < len(t.Nodes); i++ {
		n := t.Nodes[i]
		if !isPhraseHead(t, i) || seen[i] {
			continue
		}
		span := modifierSpan(t, i)
		var words []string
		var tags []pos.Tag
		var toks []text.Token
		for _, j := range span {
			seen[j] = true
			nd := t.Nodes[j]
			if nd.IsWordLike() {
				words = append(words, nd.Lower)
				tags = append(tags, nd.Tag)
				toks = append(toks, nd.Token)
			}
		}
		stripped := text.StripStopwords(words)
		// Align the tag slice with the stripped word window.
		lo := 0
		for lo < len(words) && (len(stripped) == 0 || words[lo] != stripped[0]) {
			lo++
		}
		if len(stripped) == 0 {
			continue
		}
		tags = tags[lo : lo+len(stripped)]
		// Recompute the byte span over the stripped words.
		start, end := spanOf(toks, stripped)
		out = append(out, Phrase{Words: stripped, Tags: tags, HeadWord: n.Lower, Start: start, End: end})
	}
	return out
}

// isPhraseHead reports whether node i heads a noun phrase: a non-pronoun
// nominal that is not itself a compound modifier of a later nominal.
func isPhraseHead(t *dep.Tree, i int) bool {
	n := t.Nodes[i]
	if n.Tag != pos.NOUN && n.Tag != pos.PROPN {
		return false
	}
	return n.Rel != dep.RelCompound
}

// modifierSpan returns the contiguous span of node i together with its
// pre-nominal dependents (det, amod, nummod, compound), in surface order.
// Post-nominal dependents (prepositional phrases, conjuncts) are excluded so
// that "tumor on the nerve" yields two phrases, matching the paper.
func modifierSpan(t *dep.Tree, head int) []int {
	include := map[int]bool{head: true}
	var collect func(int)
	collect = func(j int) {
		for _, c := range t.Children(j) {
			nd := t.Nodes[c]
			if c > head {
				continue
			}
			switch nd.Rel {
			case dep.RelDet, dep.RelAmod, dep.RelNummod, dep.RelCompound:
				include[c] = true
				collect(c)
			}
		}
	}
	collect(head)
	// Take the contiguous run ending at head (gaps mean intervening
	// structure we must not glue together).
	lo := head
	for lo-1 >= 0 && include[lo-1] {
		lo--
	}
	span := make([]int, 0, head-lo+1)
	for j := lo; j <= head; j++ {
		span = append(span, j)
	}
	return span
}

// spanOf maps stripped words back onto token offsets. words is a suffix-free
// contiguous subsequence of the token text, so we locate the first and last
// kept word.
func spanOf(toks []text.Token, words []string) (int, int) {
	if len(words) == 0 || len(toks) == 0 {
		return 0, 0
	}
	first, last := -1, -1
	w := 0
	for _, tk := range toks {
		if w < len(words) && tk.Lower == words[w] {
			if first == -1 {
				first = tk.Start
			}
			last = tk.End
			w++
		} else if first == -1 {
			continue
		}
	}
	if first == -1 {
		return toks[0].Start, toks[len(toks)-1].End
	}
	return first, last
}

// MaxSubphraseLen caps the candidate subphrase length. Real entities rarely
// exceed a handful of words; the cap also keeps enumeration linear in the
// phrase length, so a degenerate parse that glues a whole run-on sentence
// into one "noun phrase" cannot blow up the matcher.
const MaxSubphraseLen = 8

// Subphrases enumerates the candidate word subsequences of a phrase, the
// candidate entities the semantic matcher scores (Section IV-B). Order:
// longer subphrases first (capped at MaxSubphraseLen), then by start
// position, so exact-phrase matches are considered before fragments.
// Subphrases consisting only of stop-words are omitted, and — when tags are
// available — so are subphrases that do not end in a nominal word: an
// adjective fragment like "severe" cannot be an entity on its own.
func Subphrases(p Phrase) [][]string {
	var out [][]string
	for _, s := range AppendSubphraseSpans(nil, p) {
		out = append(out, p.Words[s.Start:s.End])
	}
	return out
}

// Span is a half-open [Start, End) window into a phrase's Words. Every
// subphrase is contiguous, so a span identifies it without copying.
type Span struct {
	// Start and End are word indices delimiting the half-open window.
	Start, End int
}

// AppendSubphraseSpans appends the spans of p's candidate subphrases to dst
// (reusing its capacity) in exactly Subphrases order. It exists for hot-path
// callers that enumerate subphrases per document and want to carry one
// reusable scratch buffer instead of allocating [][]string each call.
func AppendSubphraseSpans(dst []Span, p Phrase) []Span {
	n := len(p.Words)
	longest := n
	if longest > MaxSubphraseLen {
		longest = MaxSubphraseLen
	}
	for length := longest; length >= 1; length-- {
		for start := 0; start+length <= n; start++ {
			if !p.Nominal(start + length - 1) {
				continue
			}
			if allStopwords(p.Words[start : start+length]) {
				continue
			}
			dst = append(dst, Span{Start: start, End: start + length})
		}
	}
	return dst
}

func allStopwords(words []string) bool {
	for _, w := range words {
		if !text.IsStopword(w) {
			return false
		}
	}
	return true
}
