// Package phrase extracts noun phrases from dependency-parsed sentences and
// enumerates candidate subphrases, implementing PARSER.EXTRACTNOUNPHRASES of
// Algorithm 1 in the THOR paper.
//
// A noun phrase is a dependency subtree whose root is a NOUN, PROPN or PRON,
// restricted to the contiguous pre-nominal modifier span (determiners,
// adjectives, numerals and compound nouns). Leading and trailing stop-words
// are stripped, so "the lungs" yields the phrase "lungs".
package phrase
