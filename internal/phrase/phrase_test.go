package phrase

import (
	"fmt"
	"reflect"
	"testing"

	"thor/internal/dep"
	"thor/internal/pos"
	"thor/internal/text"
)

func extract(t *testing.T, s string) []Phrase {
	t.Helper()
	sents := text.SplitSentences(s)
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence from %q", s)
	}
	return Extract(dep.Parse(pos.New().Tag(sents[0])))
}

func phraseTexts(ps []Phrase) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Text()
	}
	return out
}

func TestExtractRunningExample(t *testing.T) {
	// Paper Section IV-B: from 'Tuberculosis generally damages the lungs'
	// THOR generates {'Tuberculosis', 'lungs'}.
	got := phraseTexts(extract(t, "Tuberculosis generally damages the lungs."))
	want := []string{"tuberculosis", "lungs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("phrases = %v, want %v", got, want)
	}
}

func TestExtractModifiedPhrase(t *testing.T) {
	got := phraseTexts(extract(t, "An acoustic neuroma is a slow-growing non-cancerous brain tumor."))
	want := []string{"acoustic neuroma", "slow-growing non-cancerous brain tumor"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("phrases = %v, want %v", got, want)
	}
}

func TestExtractPrepositionalSplit(t *testing.T) {
	got := phraseTexts(extract(t, "It develops on the main nerve leading from the inner ear to the brain."))
	// Pronoun subject is skipped; each prepositional object is its own phrase.
	want := []string{"main nerve", "inner ear", "brain"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("phrases = %v, want %v", got, want)
	}
}

func TestExtractCoordination(t *testing.T) {
	got := phraseTexts(extract(t, "Complications may include hearing loss and unsteadiness."))
	want := []string{"complications", "hearing loss", "unsteadiness"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("phrases = %v, want %v", got, want)
	}
}

func TestExtractSkipsPronouns(t *testing.T) {
	got := extract(t, "They recovered.")
	if len(got) != 0 {
		t.Errorf("pronoun-only sentence produced phrases: %v", phraseTexts(got))
	}
}

func TestExtractOffsets(t *testing.T) {
	in := "Tuberculosis generally damages the lungs."
	ps := extract(t, in)
	for _, p := range ps {
		span := in[p.Start:p.End]
		if text.NormalizePhrase(span) != p.Text() {
			t.Errorf("span %q does not normalize to phrase %q", span, p.Text())
		}
	}
	// "the lungs" strips "the": span must start at "lungs".
	if ps[1].Start != len("Tuberculosis generally damages the ") {
		t.Errorf("lungs span start = %d", ps[1].Start)
	}
}

func TestExtractHeadWord(t *testing.T) {
	ps := extract(t, "A severe lung infection appeared.")
	if len(ps) != 1 || ps[0].HeadWord != "infection" {
		t.Fatalf("phrases = %+v", ps)
	}
	if ps[0].Text() != "severe lung infection" {
		t.Errorf("text = %q", ps[0].Text())
	}
}

func TestSubphrasesOrderAndCompleteness(t *testing.T) {
	got := Subphrases(Phrase{Words: []string{"non-cancerous", "brain", "tumor"}})
	want := [][]string{
		{"non-cancerous", "brain", "tumor"},
		{"non-cancerous", "brain"},
		{"brain", "tumor"},
		{"non-cancerous"},
		{"brain"},
		{"tumor"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Subphrases = %v, want %v", got, want)
	}
}

func TestSubphrasesSkipStopwordOnly(t *testing.T) {
	got := Subphrases(Phrase{Words: []string{"shortness", "of", "breath"}})
	for _, sub := range got {
		if len(sub) == 1 && sub[0] == "of" {
			t.Error("stop-word-only subphrase not filtered")
		}
	}
	// Full phrase still present.
	if len(got) == 0 || len(got[0]) != 3 {
		t.Errorf("full phrase missing: %v", got)
	}
}

func TestSubphrasesEmpty(t *testing.T) {
	if got := Subphrases(Phrase{}); len(got) != 0 {
		t.Errorf("Subphrases(nil) = %v", got)
	}
}

// Property: subphrase count for k non-stopword words is k*(k+1)/2.
func TestSubphrasesCount(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for k := 1; k <= len(words); k++ {
		got := len(Subphrases(Phrase{Words: words[:k]}))
		want := k * (k + 1) / 2
		if got != want {
			t.Errorf("k=%d: %d subphrases, want %d", k, got, want)
		}
	}
}

// Property: every extracted phrase contains at least one non-stop word and
// no leading/trailing stop-words.
func TestExtractNoEdgeStopwords(t *testing.T) {
	docs := []string{
		"The main nerve of the inner ear may swell.",
		"A doctor may recommend the surgical removal of the tumor.",
		"Symptoms include a persistent cough and severe chest pain.",
	}
	for _, d := range docs {
		for _, p := range extract(t, d) {
			if len(p.Words) == 0 {
				t.Fatalf("%q: empty phrase", d)
			}
			if text.IsStopword(p.Words[0]) || text.IsStopword(p.Words[len(p.Words)-1]) {
				t.Errorf("%q: phrase %q has edge stop-word", d, p.Text())
			}
		}
	}
}

func TestSubphrasesLengthCap(t *testing.T) {
	words := make([]string, 50)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	got := Subphrases(Phrase{Words: words})
	for _, sub := range got {
		if len(sub) > MaxSubphraseLen {
			t.Fatalf("subphrase of length %d exceeds cap", len(sub))
		}
	}
	// Linear growth: at most MaxSubphraseLen windows per start position.
	if len(got) > MaxSubphraseLen*len(words) {
		t.Errorf("subphrase count %d not linear in phrase length", len(got))
	}
}
