package dep

import (
	"fmt"
	"strings"

	"thor/internal/pos"
)

// Relation names follow Universal Dependencies.
const (
	RelRoot     = "root"
	RelNsubj    = "nsubj"
	RelObj      = "obj"
	RelDet      = "det"
	RelAmod     = "amod"
	RelNummod   = "nummod"
	RelCompound = "compound"
	RelPrep     = "prep"
	RelPobj     = "pobj"
	RelAux      = "aux"
	RelAdvmod   = "advmod"
	RelCc       = "cc"
	RelConj     = "conj"
	RelPunct    = "punct"
	RelDep      = "dep"
)

// Node is one token in the dependency tree.
type Node struct {
	pos.TaggedToken
	// Index is the node's position in the sentence.
	Index int
	// Head is the index of the governing node, or -1 for the root.
	Head int
	// Rel is the dependency relation to the head.
	Rel string
}

// Tree is a parsed sentence: nodes in surface order plus a child index.
type Tree struct {
	// Nodes are the sentence's tokens in surface order.
	Nodes    []Node
	children [][]int
	root     int
}

// Root returns the index of the root node, or -1 for an empty tree.
func (t *Tree) Root() int { return t.root }

// Children returns the indices of the direct dependents of node i, in
// surface order.
func (t *Tree) Children(i int) []int { return t.children[i] }

// Subtree returns the indices of node i and all its descendants, in surface
// order.
func (t *Tree) Subtree(i int) []int {
	var out []int
	var walk func(int)
	walk = func(j int) {
		out = append(out, j)
		for _, c := range t.children[j] {
			walk(c)
		}
	}
	walk(i)
	// The walk is pre-order over an ordered child index; sort by surface
	// position for a stable span.
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

// String renders the tree one relation per line, for debugging and tests.
func (t *Tree) String() string {
	var b strings.Builder
	for _, n := range t.Nodes {
		head := "ROOT"
		if n.Head >= 0 {
			head = t.Nodes[n.Head].Text
		}
		fmt.Fprintf(&b, "%s -%s-> %s\n", n.Text, n.Rel, head)
	}
	return b.String()
}

// Parse builds a dependency tree for a tagged sentence. Parsing never fails:
// unattachable tokens fall back to the root with relation "dep".
func Parse(tagged []pos.TaggedToken) *Tree {
	n := len(tagged)
	t := &Tree{Nodes: make([]Node, n), children: make([][]int, n), root: -1}
	for i, tok := range tagged {
		t.Nodes[i] = Node{TaggedToken: tok, Index: i, Head: -1, Rel: RelDep}
	}
	if n == 0 {
		return t
	}

	root := findRoot(t.Nodes)
	t.root = root
	t.Nodes[root].Rel = RelRoot

	// Pass 1: nominal-run heads. A nominal run is a maximal sequence of
	// NOUN/PROPN (optionally mixed with PRON); its head is the final token
	// and earlier nominals attach as compounds ("brain tumor" → brain
	// -compound-> tumor).
	runHead := make([]int, n) // runHead[i] = head index of the run containing i, or -1
	for i := range runHead {
		runHead[i] = -1
	}
	for i := 0; i < n; {
		if !t.Nodes[i].Tag.IsNominal() {
			i++
			continue
		}
		j := i
		for j+1 < n && t.Nodes[j+1].Tag.IsNominal() {
			j++
		}
		for k := i; k <= j; k++ {
			runHead[k] = j
			if k != j {
				attach(t, k, j, RelCompound)
			}
		}
		i = j + 1
	}

	// Pass 2: pre-nominal modifiers attach to the head of the next nominal
	// run to the right.
	for i := 0; i < n; i++ {
		node := t.Nodes[i]
		if !node.Tag.IsModifier() {
			continue
		}
		if h := nextRunHead(t, runHead, i); h >= 0 {
			switch node.Tag {
			case pos.DET:
				attach(t, i, h, RelDet)
			case pos.NUM:
				attach(t, i, h, RelNummod)
			default:
				attach(t, i, h, RelAmod)
			}
		}
	}

	// Pass 3: clause structure around the root.
	for i := 0; i < n; i++ {
		node := &t.Nodes[i]
		if i == root || node.Head >= 0 {
			continue
		}
		switch node.Tag {
		case pos.AUX:
			attach(t, i, root, RelAux)
		case pos.ADV:
			attach(t, i, nearestVerb(t.Nodes, i, root), RelAdvmod)
		case pos.PUNCT:
			attach(t, i, root, RelPunct)
		}
	}

	// Pass 4: subject = head of last nominal run before the root;
	// object = head of first nominal run after the root that is not
	// governed by a preposition or conjunction.
	if subj := lastRunHeadBefore(t, runHead, root); subj >= 0 {
		attach(t, subj, root, RelNsubj)
	}
	assignObjectsAndPreps(t, runHead, root)

	// Pass 5: coordination. "X and Y": cc attaches to the following
	// conjunct; the conjunct attaches to the preceding attached nominal.
	for i := 0; i < n; i++ {
		if t.Nodes[i].Tag != pos.CCONJ {
			continue
		}
		next := nextRunHead(t, runHead, i)
		prev := prevAttachedRunHead(t, runHead, i)
		if next >= 0 && prev >= 0 && t.Nodes[next].Head < 0 {
			attach(t, next, prev, RelConj)
		}
		if next >= 0 {
			attach(t, i, next, RelCc)
		} else if prev >= 0 {
			attach(t, i, prev, RelCc)
		}
	}

	// Fallback: anything still unattached hangs off the root.
	for i := 0; i < n; i++ {
		if i != root && t.Nodes[i].Head < 0 {
			attach(t, i, root, RelDep)
		}
	}

	rebuildChildren(t)
	return t
}

// findRoot picks the sentence root: the first lexical verb, else the first
// auxiliary, else the head of the first nominal run, else token 0.
func findRoot(nodes []Node) int {
	for i, n := range nodes {
		if n.Tag == pos.VERB {
			return i
		}
	}
	for i, n := range nodes {
		if n.Tag == pos.AUX {
			return i
		}
	}
	last := -1
	for i, n := range nodes {
		if n.Tag.IsNominal() {
			last = i
			if i+1 >= len(nodes) || !nodes[i+1].Tag.IsNominal() {
				return last
			}
		}
	}
	if last >= 0 {
		return last
	}
	return 0
}

func attach(t *Tree, child, head int, rel string) {
	if child == head || head < 0 {
		return
	}
	if t.Nodes[child].Head >= 0 {
		return // first attachment wins; rules are ordered by precedence
	}
	if t.Nodes[child].Rel == RelRoot {
		return
	}
	t.Nodes[child].Head = head
	t.Nodes[child].Rel = rel
}

// nextRunHead scans right from i for the head of the next nominal run,
// crossing only other pre-nominal modifiers ("a slow-growing non-cancerous
// brain tumor": every modifier reaches "tumor").
func nextRunHead(t *Tree, runHead []int, i int) int {
	for j := i + 1; j < len(runHead); j++ {
		if runHead[j] >= 0 {
			return runHead[j]
		}
		if !t.Nodes[j].Tag.IsModifier() {
			return -1
		}
	}
	return -1
}

func lastRunHeadBefore(t *Tree, runHead []int, root int) int {
	for j := root - 1; j >= 0; j-- {
		if runHead[j] >= 0 && runHead[j] < root && t.Nodes[runHead[j]].Head < 0 {
			return runHead[j]
		}
	}
	return -1
}

func prevAttachedRunHead(t *Tree, runHead []int, i int) int {
	for j := i - 1; j >= 0; j-- {
		if runHead[j] >= 0 && runHead[j] <= j {
			return runHead[j]
		}
	}
	return -1
}

func nearestVerb(nodes []Node, i, root int) int {
	for j := i + 1; j < len(nodes); j++ {
		if nodes[j].Tag == pos.VERB || nodes[j].Tag == pos.AUX {
			return j
		}
	}
	for j := i - 1; j >= 0; j-- {
		if nodes[j].Tag == pos.VERB || nodes[j].Tag == pos.AUX {
			return j
		}
	}
	return root
}

// assignObjectsAndPreps walks right of each verb attaching prepositions,
// their objects (pobj) and direct objects (obj).
func assignObjectsAndPreps(t *Tree, runHead []int, root int) {
	n := len(t.Nodes)
	// Attach every ADP to the nearest preceding verb or nominal head; its
	// following nominal run head becomes pobj of the ADP.
	for i := 0; i < n; i++ {
		if t.Nodes[i].Tag != pos.ADP {
			continue
		}
		gov := root
		for j := i - 1; j >= 0; j-- {
			tag := t.Nodes[j].Tag
			if tag == pos.VERB || tag == pos.AUX || (runHead[j] == j) {
				gov = j
				break
			}
		}
		attach(t, i, gov, RelPrep)
		if h := nextRunHead(t, runHead, i); h >= 0 {
			attach(t, h, i, RelPobj)
		} else {
			// Preposition followed by modifiers then a nominal
			// ("of the inner ear"): scan forward to the first run head.
			for j := i + 1; j < n; j++ {
				if runHead[j] >= 0 {
					attach(t, runHead[j], i, RelPobj)
					break
				}
				if !t.Nodes[j].Tag.IsModifier() && t.Nodes[j].Tag != pos.ADV {
					break
				}
			}
		}
	}
	// Direct object: first unattached nominal run head right of the root.
	for j := root + 1; j < n; j++ {
		if runHead[j] == j && t.Nodes[j].Head < 0 {
			attach(t, j, root, RelObj)
			break
		}
	}
}

func rebuildChildren(t *Tree) {
	for i := range t.children {
		t.children[i] = nil
	}
	for i, n := range t.Nodes {
		if n.Head >= 0 {
			t.children[n.Head] = append(t.children[n.Head], i)
		}
	}
}
