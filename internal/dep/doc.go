// Package dep implements a deterministic rule-based dependency parser over
// part-of-speech-tagged sentences.
//
// It stands in for spaCy's statistical parser in the original THOR system.
// THOR consumes the parse only to (a) extract noun phrases — subtrees rooted
// at a NOUN/PROPN/PRON with leading modifiers — and (b) expose
// subject-verb-object structure (nsubj/obj thematic roles, Fig. 3 of the
// paper). The head-finding rules below recover exactly those relations for
// declarative English prose.
package dep
