package dep

import (
	"strings"
	"testing"

	"thor/internal/pos"
	"thor/internal/text"
)

func parse(t *testing.T, s string) *Tree {
	t.Helper()
	sents := text.SplitSentences(s)
	if len(sents) != 1 {
		t.Fatalf("expected 1 sentence from %q", s)
	}
	return Parse(pos.New().Tag(sents[0]))
}

func nodeByText(t *testing.T, tr *Tree, w string) Node {
	t.Helper()
	for _, n := range tr.Nodes {
		if n.Lower == w {
			return n
		}
	}
	t.Fatalf("token %q not found in %v", w, tr.Nodes)
	return Node{}
}

// The paper's Fig. 3: 'Tuberculosis generally damages the lungs'.
func TestParseRunningExample(t *testing.T) {
	tr := parse(t, "Tuberculosis generally damages the lungs.")

	damages := nodeByText(t, tr, "damages")
	if damages.Rel != RelRoot || damages.Head != -1 {
		t.Fatalf("root should be 'damages': %+v", damages)
	}
	if n := nodeByText(t, tr, "tuberculosis"); n.Rel != RelNsubj || tr.Nodes[n.Head].Lower != "damages" {
		t.Errorf("tuberculosis: %s -> %v, want nsubj -> damages", n.Rel, n.Head)
	}
	if n := nodeByText(t, tr, "lungs"); n.Rel != RelObj || tr.Nodes[n.Head].Lower != "damages" {
		t.Errorf("lungs: %s, want obj of damages", n.Rel)
	}
	if n := nodeByText(t, tr, "the"); n.Rel != RelDet || tr.Nodes[n.Head].Lower != "lungs" {
		t.Errorf("the: %s -> ?, want det -> lungs", n.Rel)
	}
	if n := nodeByText(t, tr, "generally"); n.Rel != RelAdvmod {
		t.Errorf("generally: %s, want advmod", n.Rel)
	}
}

func TestParseCompoundNoun(t *testing.T) {
	tr := parse(t, "The brain tumor grows slowly.")
	brain := nodeByText(t, tr, "brain")
	if brain.Rel != RelCompound || tr.Nodes[brain.Head].Lower != "tumor" {
		t.Errorf("brain: rel=%s head=%d, want compound -> tumor", brain.Rel, brain.Head)
	}
	tumor := nodeByText(t, tr, "tumor")
	if tumor.Rel != RelNsubj {
		t.Errorf("tumor: %s, want nsubj", tumor.Rel)
	}
}

func TestParseAdjectiveModifier(t *testing.T) {
	tr := parse(t, "A severe infection damages the inner ear.")
	severe := nodeByText(t, tr, "severe")
	if severe.Rel != RelAmod || tr.Nodes[severe.Head].Lower != "infection" {
		t.Errorf("severe: rel=%s, want amod -> infection", severe.Rel)
	}
	inner := nodeByText(t, tr, "inner")
	if inner.Rel != RelAmod || tr.Nodes[inner.Head].Lower != "ear" {
		t.Errorf("inner: rel=%s head=%q, want amod -> ear", inner.Rel, tr.Nodes[inner.Head].Lower)
	}
}

func TestParsePrepositionalPhrase(t *testing.T) {
	tr := parse(t, "It develops on the main nerve.")
	on := nodeByText(t, tr, "on")
	if on.Rel != RelPrep || tr.Nodes[on.Head].Lower != "develops" {
		t.Errorf("on: rel=%s head=%q, want prep -> develops", on.Rel, tr.Nodes[on.Head].Lower)
	}
	nerve := nodeByText(t, tr, "nerve")
	if nerve.Rel != RelPobj || tr.Nodes[nerve.Head].Lower != "on" {
		t.Errorf("nerve: rel=%s, want pobj -> on", nerve.Rel)
	}
}

func TestParseCoordination(t *testing.T) {
	tr := parse(t, "Symptoms include fever and headache.")
	and := nodeByText(t, tr, "and")
	if and.Rel != RelCc {
		t.Errorf("and: %s, want cc", and.Rel)
	}
	headache := nodeByText(t, tr, "headache")
	if headache.Rel != RelConj || tr.Nodes[headache.Head].Lower != "fever" {
		t.Errorf("headache: rel=%s head=%q, want conj -> fever", headache.Rel, tr.Nodes[headache.Head].Lower)
	}
}

func TestParseAuxiliary(t *testing.T) {
	tr := parse(t, "The patient has developed symptoms.")
	has := nodeByText(t, tr, "has")
	if has.Rel != RelAux {
		t.Errorf("has: %s, want aux", has.Rel)
	}
	if root := tr.Nodes[tr.Root()]; root.Lower != "developed" {
		t.Errorf("root = %q, want developed", root.Lower)
	}
}

func TestParseVerblessFragment(t *testing.T) {
	// Noun-phrase-only input: the head of the first nominal run roots the
	// tree and parsing must not fail.
	tr := parse(t, "A slow-growing non-cancerous brain tumor")
	root := tr.Nodes[tr.Root()]
	if root.Lower != "tumor" {
		t.Errorf("fragment root = %q, want tumor", root.Lower)
	}
}

func TestParseEmptyAndSingle(t *testing.T) {
	tr := Parse(nil)
	if tr.Root() != -1 || len(tr.Nodes) != 0 {
		t.Errorf("empty parse: root=%d nodes=%d", tr.Root(), len(tr.Nodes))
	}
	tr2 := parse(t, "Tuberculosis")
	if tr2.Root() != 0 {
		t.Errorf("single-token root = %d", tr2.Root())
	}
}

func TestSubtreeSpans(t *testing.T) {
	tr := parse(t, "Tuberculosis generally damages the lungs.")
	lungs := nodeByText(t, tr, "lungs")
	sub := tr.Subtree(lungs.Index)
	if len(sub) != 2 { // "the lungs"
		t.Fatalf("subtree(lungs) = %v", sub)
	}
	if tr.Nodes[sub[0]].Lower != "the" || tr.Nodes[sub[1]].Lower != "lungs" {
		t.Errorf("subtree order wrong: %v", sub)
	}
}

// Every parse must be a tree: exactly one root, all heads in range, no
// self-loops, and no cycles.
func TestParseTreeInvariants(t *testing.T) {
	sentences := []string{
		"Tuberculosis generally damages the lungs.",
		"An acoustic neuroma is a slow-growing non-cancerous brain tumor.",
		"It develops on the main nerve leading from the inner ear to the brain.",
		"Complications may include hearing loss and unsteadiness.",
		"Alice worked as a senior software engineer at Acme for 5 years.",
		"She holds a degree in computer science from Stanford University.",
		"and or but", "the the the", "!!!", "word",
	}
	for _, s := range sentences {
		sents := text.SplitSentences(s)
		if len(sents) == 0 {
			continue
		}
		tr := Parse(pos.New().Tag(sents[0]))
		checkTree(t, tr, s)
	}
}

func checkTree(t *testing.T, tr *Tree, src string) {
	t.Helper()
	n := len(tr.Nodes)
	if n == 0 {
		return
	}
	roots := 0
	for i, nd := range tr.Nodes {
		if nd.Head == -1 {
			roots++
			if nd.Rel != RelRoot {
				t.Errorf("%q: headless node %d has rel %s", src, i, nd.Rel)
			}
			continue
		}
		if nd.Head < 0 || nd.Head >= n || nd.Head == i {
			t.Errorf("%q: node %d has invalid head %d", src, i, nd.Head)
		}
	}
	if roots != 1 {
		t.Errorf("%q: %d roots, want 1\n%s", src, roots, tr)
	}
	// Cycle check: walking heads from any node must reach the root.
	for i := range tr.Nodes {
		seen := map[int]bool{}
		j := i
		for j != -1 {
			if seen[j] {
				t.Fatalf("%q: cycle through node %d\n%s", src, i, tr)
			}
			seen[j] = true
			j = tr.Nodes[j].Head
		}
	}
}

func TestParsePassiveVoice(t *testing.T) {
	// "is caused by X": the copula roots the clause (no lexical verb before
	// it), and the agent attaches through the preposition chain.
	tr := parse(t, "The condition is caused by a bacterial infection.")
	by := nodeByText(t, tr, "by")
	if by.Rel != RelPrep {
		t.Errorf("by: rel=%s, want prep", by.Rel)
	}
	infection := nodeByText(t, tr, "infection")
	if infection.Rel != RelPobj || tr.Nodes[infection.Head].Lower != "by" {
		t.Errorf("infection: rel=%s, want pobj of by", infection.Rel)
	}
	condition := nodeByText(t, tr, "condition")
	if condition.Rel != RelNsubj {
		t.Errorf("condition: rel=%s, want nsubj", condition.Rel)
	}
}

func TestParseCoordinationChain(t *testing.T) {
	tr := parse(t, "Symptoms include fever, chills and fatigue.")
	fever := nodeByText(t, tr, "fever")
	if fever.Rel != RelObj {
		t.Errorf("fever: rel=%s, want obj", fever.Rel)
	}
	// Each later conjunct must attach leftward into the coordination.
	for _, w := range []string{"chills", "fatigue"} {
		n := nodeByText(t, tr, w)
		if n.Head < 0 || n.Head >= n.Index {
			t.Errorf("%s: head=%d, want an earlier node", w, n.Head)
		}
	}
}

func TestParseNumbersAsModifiers(t *testing.T) {
	tr := parse(t, "She has 5 years of experience.")
	five := nodeByText(t, tr, "5")
	if five.Rel != RelNummod || tr.Nodes[five.Head].Lower != "years" {
		t.Errorf("5: rel=%s head=%q, want nummod -> years", five.Rel, tr.Nodes[five.Head].Lower)
	}
}

func TestParseNestedPrepositions(t *testing.T) {
	tr := parse(t, "Alice worked at a laboratory in Barcelona for a decade.")
	for _, prep := range []string{"at", "in", "for"} {
		n := nodeByText(t, tr, prep)
		if n.Rel != RelPrep {
			t.Errorf("%s: rel=%s, want prep", prep, n.Rel)
		}
	}
	barcelona := nodeByText(t, tr, "barcelona")
	if barcelona.Rel != RelPobj {
		t.Errorf("barcelona: rel=%s, want pobj", barcelona.Rel)
	}
}

func TestParseDeterminerOnlyNoCrash(t *testing.T) {
	tr := parse(t, "The the a an.")
	checkTree(t, tr, "determiner soup")
}

func TestParseSubtreeOfRootCoversSentence(t *testing.T) {
	tr := parse(t, "Tuberculosis generally damages the lungs.")
	sub := tr.Subtree(tr.Root())
	if len(sub) != len(tr.Nodes) {
		t.Errorf("root subtree covers %d of %d nodes", len(sub), len(tr.Nodes))
	}
	// Surface order.
	for i := 1; i < len(sub); i++ {
		if sub[i] <= sub[i-1] {
			t.Errorf("subtree not in surface order: %v", sub)
		}
	}
}

func TestTreeStringRendering(t *testing.T) {
	tr := parse(t, "Acne causes spots.")
	s := tr.String()
	if !strings.Contains(s, "-root->") || !strings.Contains(s, "ROOT") {
		t.Errorf("String() = %q", s)
	}
}
