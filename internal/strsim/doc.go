// Package strsim provides the syntactic string-similarity measures THOR's
// refinement stage uses: Gestalt pattern matching (Ratcliff–Obershelp) at the
// character level and Jaccard overlap at the word level, plus Levenshtein
// distance used by the segmentation fallback.
package strsim
