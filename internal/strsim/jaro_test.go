package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"", "", 1},
		{"a", "", 0},
		{"same", "same", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Jaro(%q,%q) = %.6f, want %.6f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	// The classic reference value.
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.961111) > 1e-5 {
		t.Errorf("JaroWinkler(martha,marhta) = %.6f, want 0.961111", got)
	}
	// A shared prefix must never hurt.
	if JaroWinkler("prefixfoo", "prefixbar") < Jaro("prefixfoo", "prefixbar") {
		t.Error("prefix boost decreased similarity")
	}
	// No prefix: identical to Jaro.
	if JaroWinkler("abc", "xbc") != Jaro("abc", "xbc") {
		t.Error("boost applied without a shared prefix")
	}
}

func TestJaroSymmetryAndBounds(t *testing.T) {
	trim := func(s string) string {
		if len(s) > 16 {
			return s[:16]
		}
		return s
	}
	f := func(a, b string) bool {
		a, b = trim(a), trim(b)
		j1, j2 := Jaro(a, b), Jaro(b, a)
		if math.Abs(j1-j2) > 1e-12 {
			return false
		}
		jw := JaroWinkler(a, b)
		return j1 >= 0 && j1 <= 1 && jw >= j1-1e-12 && jw <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTokenSetRatio(t *testing.T) {
	// Word order must not matter.
	if got := TokenSetRatio("brain tumor severe", "severe brain tumor"); got != 1 {
		t.Errorf("reordered phrases = %v, want 1", got)
	}
	// Duplicates collapse.
	if got := TokenSetRatio("pain pain pain", "pain"); got != 1 {
		t.Errorf("duplicates = %v, want 1", got)
	}
	// Subset phrases score high.
	if got := TokenSetRatio("severe hearing loss", "hearing loss"); got < 0.6 {
		t.Errorf("subset = %v, want high", got)
	}
	// Disjoint phrases score low.
	if got := TokenSetRatio("alpha beta", "gamma delta"); got > 0.5 {
		t.Errorf("disjoint = %v, want low", got)
	}
	if got := TokenSetRatio("", ""); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
}

func TestTokenSetRatioSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		r1, r2 := TokenSetRatio(a, b), TokenSetRatio(b, a)
		return math.Abs(r1-r2) < 1e-12 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
