package strsim

import "strings"

// Gestalt computes the Ratcliff–Obershelp similarity between two strings:
// 2*M / (len(a)+len(b)), where M is the total length of recursively matched
// common substrings. This is the algorithm behind Python difflib's
// SequenceMatcher.ratio, cited by the paper [96]. The result is in [0, 1];
// two empty strings are defined to match with 1.
func Gestalt(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := matchingChars([]byte(a), []byte(b))
	return 2 * float64(m) / float64(len(a)+len(b))
}

// matchingChars returns the total length of matched characters using the
// Ratcliff–Obershelp recursion: find the longest common substring, then
// recurse on the unmatched left and right fragments.
func matchingChars(a, b []byte) int {
	ai, bi, size := longestCommonSubstring(a, b)
	if size == 0 {
		return 0
	}
	total := size
	total += matchingChars(a[:ai], b[:bi])
	total += matchingChars(a[ai+size:], b[bi+size:])
	return total
}

// longestCommonSubstring returns the start offsets and length of the longest
// common substring of a and b, preferring the earliest occurrence in a, then
// in b (difflib's tie-breaking).
func longestCommonSubstring(a, b []byte) (ai, bi, size int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	// lengths[j] = length of common suffix ending at a[i], b[j].
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			if a[i] == b[j] {
				cur[j+1] = prev[j] + 1
				if cur[j+1] > size {
					size = cur[j+1]
					ai = i - size + 1
					bi = j - size + 1
				}
			} else {
				cur[j+1] = 0
			}
		}
		prev, cur = cur, prev
	}
	return ai, bi, size
}

// Jaccard computes the intersection-over-union similarity of the word sets
// of two phrases (e.score_w in Algorithm 1). Phrases are split on spaces;
// comparison is exact per word. Two empty phrases score 1.
func Jaccard(a, b string) float64 {
	wa, wb := strings.Fields(a), strings.Fields(b)
	if len(wa) == 0 && len(wb) == 0 {
		return 1
	}
	if len(wa) == 0 || len(wb) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(wa))
	for _, w := range wa {
		setA[w] = true
	}
	setB := make(map[string]bool, len(wb))
	for _, w := range wb {
		setB[w] = true
	}
	inter := 0
	for w := range setA {
		if setB[w] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// costs) between two strings, operating on bytes.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LevenshteinRatio maps edit distance into a [0, 1] similarity:
// 1 - d/max(len(a), len(b)). Two empty strings score 1.
func LevenshteinRatio(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
