package strsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGestaltIdentity(t *testing.T) {
	for _, s := range []string{"", "a", "tumor", "skin cancer"} {
		if g := Gestalt(s, s); math.Abs(g-1) > 1e-12 {
			t.Errorf("Gestalt(%q,%q) = %v, want 1", s, s, g)
		}
	}
}

func TestGestaltDisjoint(t *testing.T) {
	if g := Gestalt("abc", "xyz"); g != 0 {
		t.Errorf("Gestalt disjoint = %v, want 0", g)
	}
	if g := Gestalt("", "abc"); g != 0 {
		t.Errorf("Gestalt with empty = %v, want 0", g)
	}
}

func TestGestaltKnownValues(t *testing.T) {
	// Classic difflib example: ratio("abcd", "bcde") = 2*3/8 = 0.75.
	if g := Gestalt("abcd", "bcde"); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("Gestalt(abcd,bcde) = %v, want 0.75", g)
	}
	// The paper's running example pairs should order sensibly:
	// 'non-cancerous brain tumor' vs 'skin cancer' share 'canc...' material.
	g1 := Gestalt("brain", "nervous system")
	g2 := Gestalt("non-cancerous brain tumor", "skin cancer")
	if g1 <= 0 || g2 <= 0 {
		t.Errorf("expected partial overlap: g1=%v g2=%v", g1, g2)
	}
}

func TestGestaltSymmetricRange(t *testing.T) {
	f := func(a, b string) bool {
		g1, g2 := Gestalt(a, b), Gestalt(b, a)
		// Ratcliff–Obershelp can differ slightly under argument order for
		// pathological tie-breaks, but must stay within bounds; we assert
		// bounds and near-symmetry.
		return g1 >= 0 && g1 <= 1 && math.Abs(g1-g2) < 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"brain", "brain", 1},
		{"brain", "nervous system", 0},
		{"non-cancerous brain tumor", "brain tumor", 2.0 / 3.0},
		{"skin cancer", "cancer", 0.5},
		{"", "", 1},
		{"", "brain", 0},
		{"a a a", "a", 1}, // set semantics
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"tumor", "tumour", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinRatio(t *testing.T) {
	if r := LevenshteinRatio("", ""); r != 1 {
		t.Errorf("ratio empty = %v", r)
	}
	if r := LevenshteinRatio("abc", "abc"); r != 1 {
		t.Errorf("ratio identical = %v", r)
	}
	if r := LevenshteinRatio("abc", "xyz"); r != 0 {
		t.Errorf("ratio disjoint = %v", r)
	}
}

// Property: Levenshtein is a metric — symmetry, identity, triangle
// inequality.
func TestLevenshteinMetric(t *testing.T) {
	trim := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = trim(a), trim(b), trim(c)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return Levenshtein(a, c) <= dab+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Gestalt of a string against itself plus noise decreases with
// noise length.
func TestGestaltMonotoneDilution(t *testing.T) {
	base := "acoustic neuroma"
	prev := 1.0
	for i := 1; i <= 5; i++ {
		s := base + strings.Repeat(" zzz", i)
		g := Gestalt(base, s)
		if g >= prev {
			t.Errorf("dilution %d: Gestalt=%v not < %v", i, g, prev)
		}
		prev = g
	}
}
