package strsim

import "strings"

// Jaro returns the Jaro similarity of two strings in [0, 1]: the weighted
// share of matching characters within the standard window, penalized by
// transpositions. Two empty strings score 1.
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || a[i] != b[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts the Jaro similarity for strings sharing a common prefix
// (up to 4 characters), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenSetRatio compares two phrases as word sets, scoring the Gestalt
// similarity of their sorted intersection-plus-remainder renderings — robust
// to word order and duplication (fuzzywuzzy's token_set_ratio).
func TokenSetRatio(a, b string) float64 {
	sa, sb := wordSet(a), wordSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	var inter, onlyA, onlyB []string
	for w := range sa {
		if sb[w] {
			inter = append(inter, w)
		} else {
			onlyA = append(onlyA, w)
		}
	}
	for w := range sb {
		if !sa[w] {
			onlyB = append(onlyB, w)
		}
	}
	sortStrings(inter)
	sortStrings(onlyA)
	sortStrings(onlyB)
	base := strings.Join(inter, " ")
	ra := strings.TrimSpace(base + " " + strings.Join(onlyA, " "))
	rb := strings.TrimSpace(base + " " + strings.Join(onlyB, " "))
	best := symGestalt(base, ra)
	if g := symGestalt(base, rb); g > best {
		best = g
	}
	if g := symGestalt(ra, rb); g > best {
		best = g
	}
	return best
}

// symGestalt symmetrizes Gestalt, whose recursive tie-breaking can depend on
// argument order.
func symGestalt(a, b string) float64 {
	g1, g2 := Gestalt(a, b), Gestalt(b, a)
	if g2 > g1 {
		return g2
	}
	return g1
}

func wordSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range strings.Fields(s) {
		out[w] = true
	}
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
