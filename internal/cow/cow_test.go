package cow

import (
	"fmt"
	"sync"
	"testing"
)

func TestMapBasic(t *testing.T) {
	m := New[string, int]()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// First write wins.
	m.Put("a", 2)
	if v, _ := m.Get("a"); v != 1 {
		t.Fatalf("second Put overwrote: %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapMergesPastThreshold(t *testing.T) {
	m := New[int, int]()
	const n = 10 * mergeFloor
	for i := 0; i < n; i++ {
		m.Put(i, i*i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	// After many inserts most keys must live in the read snapshot, not the
	// overflow: the snapshot should hold at least 4/5 of the keys.
	if read := len(*m.read.Load()); read*5 < n*4 {
		t.Errorf("read snapshot holds %d of %d keys; merge policy broken", read, n)
	}
}

func TestMapSeed(t *testing.T) {
	m := New[string, int]()
	m.Put("old", 1)
	m.Seed(map[string]int{"a": 10, "b": 20})
	if _, ok := m.Get("old"); ok {
		t.Error("Seed kept stale key")
	}
	if v, _ := m.Get("b"); v != 20 {
		t.Errorf("seeded value lost: %d", v)
	}
}

func TestMapGetOrCompute(t *testing.T) {
	m := New[int, string]()
	calls := 0
	f := func(k int) string { calls++; return fmt.Sprint(k) }
	if got := m.GetOrCompute(7, f); got != "7" {
		t.Fatalf("GetOrCompute = %q", got)
	}
	if got := m.GetOrCompute(7, f); got != "7" || calls != 1 {
		t.Fatalf("memoization failed: %q after %d calls", got, calls)
	}
}

// TestMapConcurrent exercises racing readers and writers; run under -race.
func TestMapConcurrent(t *testing.T) {
	m := New[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (i + w) % 500
				v := m.GetOrCompute(k, func(k int) int { return k * 3 })
				if v != k*3 {
					t.Errorf("GetOrCompute(%d) = %d", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 500 {
		t.Errorf("Len = %d, want 500", m.Len())
	}
}
