// Package cow provides a read-mostly concurrent map for memoizing
// deterministic computations on the THOR hot path.
//
// The previous design guarded memo maps with a sync.RWMutex, which puts two
// atomic RMW operations (RLock/RUnlock) on every cache hit and serializes
// writers against all readers. Map replaces that with a copy-on-write
// scheme: hits are a single atomic pointer load plus one lookup in an
// immutable snapshot — no locks, no write barriers, perfectly scalable
// across the pipeline's document workers. Misses insert into a small
// mutex-guarded overflow map that is merged into a fresh snapshot once it
// outgrows a fraction of the snapshot, so the total copying work stays
// linear (amortized) in the number of distinct keys: the first merge
// effectively sizes the snapshot after a warmup pass over the workload.
//
// Values must be immutable after insertion (they are returned to concurrent
// readers), and the computation memoized must be deterministic: when two
// workers race on the same missing key, either result may win, so both must
// be equal.
package cow
