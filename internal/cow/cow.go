package cow

import (
	"sync"
	"sync/atomic"
)

// mergeFloor is the minimum overflow size that triggers a merge. Below it,
// merging would churn snapshots for little benefit.
const mergeFloor = 64

// Map is a copy-on-write concurrent map. The zero value is not usable;
// construct with New.
type Map[K comparable, V any] struct {
	read atomic.Pointer[map[K]V]
	mu   sync.Mutex
	// dirty holds keys not yet merged into the read snapshot.
	dirty map[K]V
}

// New returns an empty Map.
func New[K comparable, V any]() *Map[K, V] {
	m := &Map[K, V]{}
	empty := make(map[K]V)
	m.read.Store(&empty)
	return m
}

// Seed publishes init as the read snapshot, replacing all current content.
// It is intended for pre-sizing the map with a warmup pass before concurrent
// use; the caller must not retain or mutate init afterwards.
func (m *Map[K, V]) Seed(init map[K]V) {
	if init == nil {
		init = make(map[K]V)
	}
	m.mu.Lock()
	m.dirty = nil
	m.read.Store(&init)
	m.mu.Unlock()
}

// Get returns the value memoized for k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if v, ok := (*m.read.Load())[k]; ok {
		return v, true
	}
	m.mu.Lock()
	v, ok := m.dirty[k]
	m.mu.Unlock()
	return v, ok
}

// Put memoizes v for k. The first value stored for a key wins; later Puts
// for the same key are ignored, which keeps concurrent racing inserts of a
// deterministic computation coherent.
func (m *Map[K, V]) Put(k K, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	read := *m.read.Load()
	if _, ok := read[k]; ok {
		return
	}
	if m.dirty == nil {
		m.dirty = make(map[K]V)
	}
	if _, ok := m.dirty[k]; ok {
		return
	}
	m.dirty[k] = v
	// Merge once the overflow outgrows a quarter of the snapshot: copying is
	// then amortized O(1) per distinct key over the map's lifetime.
	if len(m.dirty) >= mergeFloor && len(m.dirty)*4 >= len(read) {
		merged := make(map[K]V, len(read)+len(m.dirty))
		for key, val := range read {
			merged[key] = val
		}
		for key, val := range m.dirty {
			merged[key] = val
		}
		m.dirty = nil
		m.read.Store(&merged)
	}
}

// GetOrCompute returns the memoized value for k, computing and storing it on
// a miss. f may run concurrently for the same key on racing misses; it must
// be deterministic.
func (m *Map[K, V]) GetOrCompute(k K, f func(K) V) V {
	if v, ok := m.Get(k); ok {
		return v
	}
	v := f(k)
	m.Put(k, v)
	// Return the canonical stored value so racing callers agree.
	if stored, ok := m.Get(k); ok {
		return stored
	}
	return v
}

// Len returns the number of distinct keys stored.
func (m *Map[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(*m.read.Load()) + len(m.dirty)
}
