package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"thor/internal/schema"
	"thor/internal/tablestore"
)

// TestPersistSnapshotAtomicReplace covers the daemon's snapshot persistence:
// the write replaces the target atomically, survives a round-trip through the
// THORTBL1 codec with its version, and a failed write leaves the previous
// snapshot untouched.
func TestPersistSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.tbl")

	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy"))
	table.AddRow("Malaria").Add("Anatomy", "liver")
	write := func(version uint64) func(io.Writer) (int64, error) {
		return func(w io.Writer) (int64, error) {
			return tablestore.WriteTable(w, version, table)
		}
	}

	if err := persistSnapshot(path, write(7)); err != nil {
		t.Fatalf("persist: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	version, got, err := tablestore.ReadFrom(f)
	f.Close()
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if version != 7 || got.Fingerprint() != table.Fingerprint() {
		t.Fatalf("round-trip: version %d fingerprint %x, want 7/%x", version, got.Fingerprint(), table.Fingerprint())
	}

	// A newer version replaces the file in place.
	if err := persistSnapshot(path, write(8)); err != nil {
		t.Fatalf("re-persist: %v", err)
	}
	f, _ = os.Open(path)
	version, _, err = tablestore.ReadFrom(f)
	f.Close()
	if err != nil || version != 8 {
		t.Fatalf("replaced snapshot: version %d err %v, want 8", version, err)
	}

	// A failed write must not clobber the good snapshot, and must not leave
	// temp files behind.
	failErr := os.ErrInvalid
	err = persistSnapshot(path, func(io.Writer) (int64, error) { return 0, failErr })
	if err != failErr {
		t.Fatalf("failed write returned %v, want %v", err, failErr)
	}
	f, _ = os.Open(path)
	version, _, err = tablestore.ReadFrom(f)
	f.Close()
	if err != nil || version != 8 {
		t.Fatalf("snapshot after failed write: version %d err %v, want intact 8", version, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "live.tbl" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after failed write: %v", names)
	}
}
