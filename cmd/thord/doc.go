// Command thord is the THOR serving daemon: it loads the integrated table,
// embedding space and warm matcher caches once, then serves concurrent
// slot-filling requests over HTTP with micro-batching and admission control
// (see internal/serve and docs/API.md).
//
// Usage:
//
//	thord -table table.json -addr :8080 [-tau 0.7] [-subject Disease]
//	      [-vectors space.thorvec] [-knowledge knowledge.json]
//	      [-workers N] [-batch-max 16] [-batch-window 2ms]
//	      [-queue-depth 64] [-doc-timeout 0] [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/fill     — documents in, entities + slot assignments out
//	POST /v1/extract  — documents in, entities only
//	GET  /healthz     — process liveness
//	GET  /readyz      — ready for traffic (503 while draining)
//	GET  /debug/*     — expvar, pprof, metrics and span dumps
//
// On SIGTERM or SIGINT the daemon drains gracefully: readyz flips to 503,
// new work is shed, queued and in-flight requests finish (bounded by
// -drain-timeout), then the process exits.
//
// Exit codes: 0 clean shutdown, 1 fatal error, 2 usage error.
package main
