package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"thor/internal/embed"
	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/serve"
	"thor/internal/tablestore"
	"thor/internal/text"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code so deferred cleanup executes on every path.
func run() int {
	var (
		tablePath     = flag.String("table", "", "path to the integrated table (.json or .csv)")
		snapshotPath  = flag.String("snapshot", "", "THORTBL1 live-table snapshot: loaded (with its version) when present, rewritten on every POST /v1/table swap and at clean shutdown")
		subject       = flag.String("subject", "", "subject concept (required for CSV tables)")
		knowledgePath = flag.String("knowledge", "", "optional fine-tuning table distinct from the fill target")
		vectors       = flag.String("vectors", "", "optional THORVEC1 embedding file (default: build from the table)")
		addr          = flag.String("addr", ":8080", "listen address")
		tau           = flag.Float64("tau", 0.7, "similarity threshold τ in [0,1]")
		workers       = flag.Int("workers", 0, "pipeline workers per batch (0 = GOMAXPROCS)")
		batchMax      = flag.Int("batch-max", 16, "maximum documents coalesced into one pipeline run")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "how long a batch waits for more requests after its first")
		queueDepth    = flag.Int("queue-depth", 64, "admission queue depth in requests; beyond it requests are shed with 503")
		maxDocs       = flag.Int("max-docs", 0, "maximum documents per request (0 = batch-max)")
		docTimeout    = flag.Duration("doc-timeout", 0, "default per-document extraction deadline (0 = none)")
		noQuant       = flag.Bool("no-quant", false, "disable the int8 quantized propose tier (results identical; A/B latency switch)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests before exiting anyway")
		shardID       = flag.String("shard-id", "", "shard name reported on /readyz and X-Thor-Shard (for partitioned tiers behind thor-router)")
		spanCap       = flag.Int("span-capacity", 4096, "span ring-buffer capacity for /debug/thor/spans")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn or error")
		traceSlow     = flag.Duration("trace-slow", 250*time.Millisecond, "flight-recorder slow threshold: traces at or above it are always retained")
		traceKeep     = flag.Int("trace-keep", 256, "flight-recorder capacity for slow/errored/shed/quarantined traces")
		sloLatency    = flag.Duration("slo-latency", 500*time.Millisecond, "per-request latency objective driving /readyz degradation (0 = error budget only)")
		sloWindow     = flag.Duration("slo-window", time.Minute, "sliding window the SLO burn rate is evaluated over")
		profKeep      = flag.Int("profile-keep", 32, "profile ring capacity for /debug/profiles (0 disables degraded-triggered profiling)")
		profSteady    = flag.Duration("profile-steady", 10*time.Minute, "steady-state profile cadence while healthy (0 = default, negative disables)")
		profCPU       = flag.Duration("profile-cpu", 250*time.Millisecond, "CPU profile duration per capture burst (negative skips CPU profiles)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: thord -table table.json -addr :8080 [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nExit codes:\n  0  clean shutdown (drained)\n  1  fatal error\n  2  usage error\n")
	}
	flag.Parse()
	if *tablePath == "" && *snapshotPath == "" {
		usageErr("-table or -snapshot is required")
	}
	if *tau < 0 || *tau > 1 {
		usageErr(fmt.Sprintf("-tau %v is outside [0,1]", *tau))
	}
	if *workers < 0 || *batchMax < 1 || *queueDepth < 1 || *maxDocs < 0 {
		usageErr("-workers/-batch-max/-queue-depth/-max-docs out of range")
	}
	if *batchWindow < 0 || *docTimeout < 0 || *drainTimeout < 0 {
		usageErr("durations must be non-negative")
	}
	if strings.EqualFold(filepath.Ext(*tablePath), ".csv") && *subject == "" {
		usageErr("CSV tables need -subject <concept> to name the subject column")
	}
	if *traceSlow < 0 || *traceKeep < 1 || *sloLatency < 0 || *sloWindow <= 0 {
		usageErr("-trace-slow/-trace-keep/-slo-latency/-slo-window out of range")
	}
	if *profKeep < 0 {
		usageErr("-profile-keep must be non-negative")
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		usageErr(err.Error())
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		usageErr(err.Error())
	}

	// A present snapshot wins over -table: it carries the mutation history
	// (the rows POST /v1/table added) plus the version the tier last served,
	// so a restarted daemon resumes exactly where it drained. -table is the
	// seed for the first boot, before any snapshot exists.
	var table *schema.Table
	var tableVersion uint64
	if *snapshotPath != "" {
		f, err := os.Open(*snapshotPath)
		switch {
		case err == nil:
			tableVersion, table, err = tablestore.ReadFrom(f)
			f.Close()
			if err != nil {
				return fatal(fmt.Errorf("snapshot %s: %w", *snapshotPath, err))
			}
			logger.Info("table snapshot loaded",
				"path", *snapshotPath, "version", tableVersion, "rows", len(table.Rows))
		case !os.IsNotExist(err):
			return fatal(err)
		}
	}
	if table == nil {
		if *tablePath == "" {
			return fatal(fmt.Errorf("snapshot %s does not exist and no -table to seed from", *snapshotPath))
		}
		var err error
		if table, err = loadTable(*tablePath, schema.Concept(*subject)); err != nil {
			return fatal(err)
		}
	}
	var knowledge *schema.Table
	if *knowledgePath != "" {
		var err error
		if knowledge, err = loadTable(*knowledgePath, schema.Concept(*subject)); err != nil {
			return fatal(err)
		}
	}
	space := selfSpace(table)
	if *vectors != "" {
		f, err := os.Open(*vectors)
		if err != nil {
			return fatal(err)
		}
		space, err = embed.ReadSpace(f)
		f.Close()
		if err != nil {
			return fatal(err)
		}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(*spanCap)
	recorder := obs.NewRecorder(obs.RecorderOptions{
		SlowThreshold:   *traceSlow,
		KeepInteresting: *traceKeep,
	})
	// The journal records the node's state transitions (breaker, SLO, table
	// swaps, drains, profiler bursts) as one causally-ordered timeline,
	// served at /debug/events and merged fleet-wide by thorctl -events.
	journal := obs.NewJournal(obs.JournalConfig{
		Node:     *addr,
		Registry: reg,
	})
	slo := obs.NewSLO(obs.SLOConfig{
		Window:  *sloWindow,
		Latency: *sloLatency,
		OnTransition: func(degraded bool, violating []string) {
			from, to := "degraded", "healthy"
			if degraded {
				from, to = "healthy", "degraded"
			}
			journal.Append(obs.JournalEvent{
				Kind:    obs.EventSLO,
				Subject: strings.Join(violating, ","),
				From:    from,
				To:      to,
			})
		},
	})
	reg.PublishExpvar("thor")
	slo.PublishExpvar("thor.slo")

	// Degraded-triggered profiling: a capture burst fires on every
	// healthy->degraded SLO transition (plus a slow steady cadence), tagged
	// with the flight recorder's retained trace IDs so a profile can be
	// correlated with the traces that degraded the objective.
	var profiler *obs.Profiler
	if *profKeep > 0 {
		profiler = obs.NewProfiler(obs.ProfilerConfig{
			Degraded: slo.Degraded,
			TraceIDs: func() []string {
				summaries := recorder.Traces()
				ids := make([]string, 0, len(summaries))
				for _, s := range summaries {
					ids = append(ids, s.TraceID)
				}
				return ids
			},
			SteadyEvery: *profSteady,
			CPUDuration: *profCPU,
			Capacity:    *profKeep,
			OnBurst: func(reason string) {
				journal.Append(obs.JournalEvent{
					Kind: obs.EventProfiler, Subject: reason, To: "captured",
				})
			},
		})
		profCtx, profCancel := context.WithCancel(context.Background())
		defer profCancel()
		go profiler.Run(profCtx)
	}

	// Every accepted mutation rewrites the snapshot (atomically, in the swap
	// hook's goroutine — mutations are rare next to fills), so a crash loses
	// at most the mutation in flight.
	var onSwap func(uint64, *schema.Table)
	if *snapshotPath != "" {
		path := *snapshotPath
		onSwap = func(version uint64, t *schema.Table) {
			if err := persistSnapshot(path, func(w io.Writer) (int64, error) {
				return tablestore.WriteTable(w, version, t)
			}); err != nil {
				logger.Warn("snapshot persist failed", "path", path, "error", err.Error())
				return
			}
			logger.Info("snapshot persisted", "path", path, "version", version)
		}
	}

	engine, err := serve.NewServer(serve.Options{
		Table:             table,
		TableVersion:      tableVersion,
		OnTableSwap:       onSwap,
		Knowledge:         knowledge,
		Space:             space,
		Tau:               *tau,
		Workers:           *workers,
		BatchMax:          *batchMax,
		BatchWindow:       *batchWindow,
		QueueDepth:        *queueDepth,
		MaxDocsPerRequest: *maxDocs,
		DocTimeout:        *docTimeout,
		DisableQuant:      *noQuant,
		Metrics:           reg,
		Tracer:            tracer,
		Recorder:          recorder,
		SLO:               slo,
		Profiler:          profiler,
		Journal:           journal,
		Logger:            logger,
		ShardID:           *shardID,
	})
	if err != nil {
		return fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatal(err)
	}
	httpSrv := &http.Server{Handler: engine}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("serving",
		"addr", ln.Addr().String(),
		"table_version", engine.TableVersion(),
		"rows", table.InstanceCount(),
		"tau", *tau,
		"batch_max", *batchMax,
		"batch_window", batchWindow.String(),
		"queue_depth", *queueDepth,
		"slo_latency", sloLatency.String())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errCh:
		return fatal(fmt.Errorf("serve: %w", err))
	}

	// Drain order: flip readiness and shed new work first, let queued and
	// in-flight requests finish, then close the HTTP listener (whose
	// Shutdown waits for active handlers, which need the engine alive).
	//
	// The listener shutdown deliberately does NOT share the engine's drain
	// context: a slow drain can consume that budget entirely, and an
	// already-expired context makes http.Server.Shutdown abort active
	// handlers immediately. The handlers still running at this point are
	// requests admitted between the signal and the listener close — the
	// engine is draining, so they are mid-shed and answer 503 + Retry-After
	// in microseconds. Aborting them tears the connection and hands the
	// client an empty reply; a fresh grace period lets every one of them
	// finish its write.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := engine.Shutdown(ctx)
	lnCtx, lnCancel := context.WithTimeout(context.Background(), listenerGrace)
	defer lnCancel()
	_ = httpSrv.Shutdown(lnCtx)
	if drainErr != nil {
		engine.Close()
		return fatal(fmt.Errorf("drain: %w", drainErr))
	}
	// Belt and braces: the swap hook already persisted every accepted
	// mutation, but a final write at clean shutdown also captures a tier that
	// started from -table and was never mutated.
	if *snapshotPath != "" {
		if err := persistSnapshot(*snapshotPath, engine.WriteTableSnapshot); err != nil {
			logger.Warn("shutdown snapshot persist failed", "path", *snapshotPath, "error", err.Error())
		} else {
			logger.Info("snapshot persisted", "path", *snapshotPath, "version", engine.TableVersion())
		}
	}
	logger.Info("drained cleanly")
	return 0
}

// persistSnapshot atomically replaces path with the bytes write produces: the
// write lands in a temp file in the destination directory, then renames over
// the target, so a crash mid-write never leaves a torn snapshot behind.
func persistSnapshot(path string, write func(io.Writer) (int64, error)) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".thortbl-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// listenerGrace bounds the listener's own shutdown after the engine drain:
// long enough for every in-flight shed response to flush, short enough that
// a wedged connection cannot hold the process open.
const listenerGrace = 5 * time.Second

// usageErr prints the message plus usage and exits 2.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "thord:", msg)
	flag.Usage()
	os.Exit(2)
}

// fatal reports err and returns the fatal exit code.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "thord:", err)
	return 1
}

// loadTable reads a JSON or CSV integrated table (CSV needs the subject
// concept).
func loadTable(path string, subject schema.Concept) (*schema.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return schema.ReadJSON(f)
	case ".csv":
		if subject == "" {
			return nil, fmt.Errorf("-subject is required for CSV tables")
		}
		return schema.ReadCSV(f, subject)
	default:
		return nil, fmt.Errorf("unsupported table format %q", filepath.Ext(path))
	}
}

// selfSpace builds the zero-configuration embedding space from the table's
// own instances (the same fallback cmd/thor ships with): column words
// cluster around a per-concept centroid, unknown words fall back to subword
// hashing.
func selfSpace(table *schema.Table) *embed.Space {
	space := embed.NewSpace()
	for _, c := range table.Schema.Concepts {
		centroid := embed.HashVector("cli-centroid:" + string(c))
		for _, v := range table.ColumnValues(c) {
			for _, w := range strings.Fields(text.NormalizePhrase(v)) {
				if space.Contains(w) {
					continue
				}
				space.Add(w, embed.Blend(centroid, embed.SubwordVector(w), 0.6))
			}
		}
	}
	return space
}
