package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bench(name string, ns float64) Bench { return Bench{Name: name, Iterations: 1, NsPerOp: ns} }

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000), bench("BenchmarkTableIX", 2000), bench("BenchmarkTableXI", 3000)}}
	newF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1150), bench("BenchmarkTableIX", 1900), bench("BenchmarkTableXI", 3600)}}
	report, regressions := Compare(oldF, newF, DefaultGuards, 0.20)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v\n%s", regressions, report)
	}
	if !strings.Contains(report, "[guarded]") {
		t.Errorf("report does not mark guarded benchmarks:\n%s", report)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000), bench("BenchmarkTableIX", 2000), bench("BenchmarkTableXI", 3000)}}
	newF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1500), bench("BenchmarkTableIX", 2000), bench("BenchmarkTableXI", 3000)}}
	_, regressions := Compare(oldF, newF, DefaultGuards, 0.20)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkTableV") {
		t.Fatalf("regressions = %v, want exactly BenchmarkTableV", regressions)
	}
}

func TestCompareUnguardedRegressionTolerated(t *testing.T) {
	oldF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000), bench("BenchmarkFig5", 100)}}
	newF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000), bench("BenchmarkFig5", 900)}}
	_, regressions := Compare(oldF, newF, []string{"BenchmarkTableV"}, 0.20)
	if len(regressions) != 0 {
		t.Fatalf("unguarded benchmark flagged: %v", regressions)
	}
}

func TestCompareMissingGuardFails(t *testing.T) {
	oldF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000)}}
	newF := &File{Benchmarks: []Bench{bench("BenchmarkFig5", 100)}}
	_, regressions := Compare(oldF, newF, []string{"BenchmarkTableV"}, 0.20)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "missing") {
		t.Fatalf("regressions = %v, want missing-benchmark failure", regressions)
	}
}

func TestCompareGuardNewOnlyWarns(t *testing.T) {
	oldF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000)}}
	newF := &File{Benchmarks: []Bench{bench("BenchmarkTableV", 1000), bench("BenchmarkNew", 5)}}
	report, regressions := Compare(oldF, newF, []string{"BenchmarkTableV", "BenchmarkNew"}, 0.20)
	if len(regressions) != 0 {
		t.Fatalf("guard without a baseline failed the diff: %v", regressions)
	}
	if !strings.Contains(report, "missing from old recording") {
		t.Errorf("no warning for baseline-less guard:\n%s", report)
	}
}

func TestParseBenchText(t *testing.T) {
	out := ParseBenchText(`goos: linux
goarch: amd64
pkg: thor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableV-4  	       1	2088516682 ns/op	         0.5743 F1	460581240 B/op	 2236765 allocs/op
BenchmarkTableIX 	       1	 689543162 ns/op	237514392 B/op	 1022116 allocs/op
PASS
ok  	thor	4.400s`)
	if len(out) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(out), out)
	}
	v := out[0]
	if v.Name != "BenchmarkTableV" || v.NsPerOp != 2088516682 || v.BytesPerOp != 460581240 || v.AllocsPerOp != 2236765 {
		t.Errorf("TableV parsed as %+v", v)
	}
	if out[1].Name != "BenchmarkTableIX" || out[1].NsPerOp != 689543162 {
		t.Errorf("TableIX parsed as %+v", out[1])
	}
}

func TestLoadJSONAndText(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(jsonPath, []byte(`{"recordedAt":"2026-08-06","benchmarks":[{"package":"thor","name":"BenchmarkTableV","iterations":1,"nsPerOp":1000,"bytesPerOp":2,"allocsPerOp":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].NsPerOp != 1000 {
		t.Fatalf("JSON load: %+v", f)
	}
	textPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(textPath, []byte("BenchmarkTableV \t 1\t1100 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = Load(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].NsPerOp != 1100 {
		t.Fatalf("text load: %+v", f)
	}
	if _, err := Load(filepath.Join(dir, "empty.txt")); err == nil {
		t.Error("loading a missing file did not fail")
	}
}
