package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one recorded benchmark result.
type Bench struct {
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Name is the benchmark function name, including any -cpu suffix.
	Name string `json:"name"`
	// Iterations is the b.N the result was measured over.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp is heap allocated per operation.
	BytesPerOp float64 `json:"bytesPerOp"`
	// AllocsPerOp is allocation count per operation.
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// File is the subset of the BENCH_*.json schema benchdiff reads.
type File struct {
	// RecordedAt documents when the baseline was captured (informational).
	RecordedAt string `json:"recordedAt"`
	// Benchmarks are the recorded results.
	Benchmarks []Bench `json:"benchmarks"`
}

// DefaultGuards are the big-table end-to-end benchmarks CI protects.
var DefaultGuards = []string{"BenchmarkTableV", "BenchmarkTableIX", "BenchmarkTableXI"}

func main() {
	threshold := flag.Float64("threshold", 0.20, "max tolerated ns/op regression on guarded benchmarks (fraction)")
	guard := flag.String("guard", strings.Join(DefaultGuards, ","), "comma-separated guarded benchmark names")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.20] [-guard names] OLD NEW")
		os.Exit(2)
	}
	// Serving baselines (thorbench -serve, gated on tail latency) are
	// detected by shape; mixing one with a benchmark recording is an error.
	oldServe, oldIsServe := LoadServe(flag.Arg(0))
	newServe, newIsServe := LoadServe(flag.Arg(1))
	if oldIsServe || newIsServe {
		if !oldIsServe || !newIsServe {
			fmt.Fprintln(os.Stderr, "benchdiff: one input is a serving baseline and the other is not")
			os.Exit(2)
		}
		report, regressions := CompareServe(oldServe, newServe, *threshold)
		fmt.Print(report)
		if len(regressions) > 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", strings.Join(regressions, "; "))
			os.Exit(1)
		}
		return
	}
	oldF, err := Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressions := Compare(oldF, newF, splitGuards(*guard), *threshold)
	fmt.Print(report)
	if len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", strings.Join(regressions, "; "))
		os.Exit(1)
	}
}

func splitGuards(s string) []string {
	var out []string
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			out = append(out, g)
		}
	}
	return out
}

// Load reads a recording: the repository's BENCH_*.json schema, or — when
// the file is not JSON — raw `go test -bench` output.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err == nil && len(f.Benchmarks) > 0 {
		return &f, nil
	}
	f = File{Benchmarks: ParseBenchText(string(data))}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: neither a BENCH_*.json recording nor go test -bench output", path)
	}
	return &f, nil
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBenchText extracts benchmark results from `go test -bench` text
// output. Lines look like
//
//	BenchmarkTableV  	       1	2088516682 ns/op	460581240 B/op	 2236765 allocs/op
//
// possibly with extra custom metrics (skipped) and a -N GOMAXPROCS suffix
// on the name (stripped, matching the JSON recordings).
func ParseBenchText(s string) []Bench {
	var out []Bench
	for _, line := range strings.Split(s, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		b := Bench{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// Compare renders a delta report for every benchmark present in both files
// and returns the guarded-benchmark regressions (empty means pass). A
// guarded benchmark missing from the new recording is a regression; one
// missing from the old recording only warns, so new benchmarks can be
// guarded before their first baseline is committed.
func Compare(oldF, newF *File, guards []string, threshold float64) (string, []string) {
	oldBy := byName(oldF.Benchmarks)
	newBy := byName(newF.Benchmarks)
	guarded := make(map[string]bool, len(guards))
	for _, g := range guards {
		guarded[g] = true
	}
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	var regressions []string
	fmt.Fprintf(&b, "%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		delta := 0.0
		if o.NsPerOp != 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		mark := ""
		if guarded[name] {
			mark = " [guarded]"
			if delta > threshold {
				mark = " [guarded: REGRESSION]"
				regressions = append(regressions,
					fmt.Sprintf("%s ns/op +%.1f%% exceeds +%.0f%%", name, delta*100, threshold*100))
			}
		}
		fmt.Fprintf(&b, "%-34s %14.0f %14.0f %+7.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, delta*100, mark)
	}
	for _, g := range guards {
		if _, ok := oldBy[g]; !ok {
			fmt.Fprintf(&b, "warning: guarded %s missing from old recording\n", g)
			continue
		}
		if _, ok := newBy[g]; !ok {
			regressions = append(regressions, fmt.Sprintf("%s missing from new recording", g))
		}
	}
	return b.String(), regressions
}

func byName(bs []Bench) map[string]Bench {
	out := make(map[string]Bench, len(bs))
	for _, b := range bs {
		out[b.Name] = b
	}
	return out
}
