package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ServeLevel is one concurrency level of a serving baseline
// (BENCH_SERVE_BASELINE.json, written by `thorbench -serve`).
type ServeLevel struct {
	// Concurrency is the closed-loop client count.
	Concurrency int `json:"concurrency"`
	// ThroughputRPS is completed requests per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// LatencyMS are the end-to-end latency percentiles in milliseconds
	// ("p50", "p95", "p99", ...).
	LatencyMS map[string]float64 `json:"latency_ms"`
}

// ServeFile is the subset of the serving-baseline schema benchdiff reads.
type ServeFile struct {
	// Benchmark identifies the workload shape.
	Benchmark string `json:"benchmark"`
	// Levels are the per-concurrency measurements.
	Levels []ServeLevel `json:"levels"`
}

// LoadServe tries to read path as a serving baseline; ok is false when the
// file is not one (the caller then falls back to the benchmark schema).
func LoadServe(path string) (*ServeFile, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var f ServeFile
	if err := json.Unmarshal(data, &f); err != nil || len(f.Levels) == 0 {
		return nil, false
	}
	return &f, true
}

// CompareServe renders a per-concurrency delta report over the tail latency
// (P99) of two serving baselines and returns the regressions: a level whose
// new P99 exceeds the old by more than threshold fails, as does a level
// missing from the new recording. Throughput deltas are reported for context
// but never gate — closed-loop throughput follows latency anyway.
func CompareServe(oldF, newF *ServeFile, threshold float64) (string, []string) {
	newBy := make(map[int]ServeLevel, len(newF.Levels))
	for _, lv := range newF.Levels {
		newBy[lv.Concurrency] = lv
	}
	levels := make([]ServeLevel, len(oldF.Levels))
	copy(levels, oldF.Levels)
	sort.Slice(levels, func(i, j int) bool { return levels[i].Concurrency < levels[j].Concurrency })

	var b strings.Builder
	var regressions []string
	fmt.Fprintf(&b, "%-6s %12s %12s %8s %14s\n", "level", "old p99 ms", "new p99 ms", "delta", "rps delta")
	for _, o := range levels {
		n, ok := newBy[o.Concurrency]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("c=%d missing from new recording", o.Concurrency))
			continue
		}
		op99, np99 := o.LatencyMS["p99"], n.LatencyMS["p99"]
		delta := 0.0
		if op99 != 0 {
			delta = np99/op99 - 1
		}
		rpsDelta := 0.0
		if o.ThroughputRPS != 0 {
			rpsDelta = n.ThroughputRPS/o.ThroughputRPS - 1
		}
		mark := ""
		if delta > threshold {
			mark = " [REGRESSION]"
			regressions = append(regressions,
				fmt.Sprintf("c=%d p99 +%.1f%% exceeds +%.0f%%", o.Concurrency, delta*100, threshold*100))
		}
		fmt.Fprintf(&b, "c=%-4d %12.2f %12.2f %+7.1f%% %+13.1f%%%s\n",
			o.Concurrency, op99, np99, delta*100, rpsDelta*100, mark)
	}
	return b.String(), regressions
}
