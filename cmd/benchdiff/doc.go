// Command benchdiff compares two benchmark recordings and fails when the
// guarded benchmarks regress. It exists so CI can hold the line on the
// big-table pipeline benchmarks (Tables V, IX and XI — the end-to-end
// experiment runs) after the matcher hot-path optimization work.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-guard name,name,...] OLD NEW
//
// OLD and NEW are either BENCH_*.json recordings (the repository's schema:
// a top-level "benchmarks" array of {package,name,nsPerOp,...}) or, when a
// file does not parse as JSON, raw `go test -bench` text output — so CI can
// diff a fresh run against the committed recording without an intermediate
// conversion step:
//
//	go test -run '^$' -bench 'BenchmarkTable(V|IX|XI)$' -benchtime 1x . | tee bench.txt
//	benchdiff BENCH_MATCH_OPT.json bench.txt
//
// Every benchmark present in both inputs is reported with its ns/op delta.
// The exit status is non-zero iff a guarded benchmark is missing from NEW
// or its ns/op exceeds OLD by more than the threshold (default 20%).
// Guarded names match with or without a -N GOMAXPROCS suffix.
package main
