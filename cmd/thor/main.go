package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/trace"
	"strings"

	"thor/internal/embed"
	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
	"thor/internal/thor"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so deferred cleanup (trace.Stop, the debug
// server, output files) still executes on the non-zero paths.
func run() int {
	var (
		tablePath = flag.String("table", "", "path to the integrated table (.json or .csv)")
		docsDir   = flag.String("docs", "", "directory of .txt documents")
		tau       = flag.Float64("tau", 0.7, "similarity threshold τ in [0,1]")
		subject   = flag.String("subject", "", "subject concept (required for CSV tables)")
		outPath   = flag.String("out", "", "output path (default: stdout)")
		format    = flag.String("format", "json", "output format: json or csv")
		vectors   = flag.String("vectors", "", "optional THORVEC1 embedding file (default: build from the table)")
		report    = flag.String("report", "", "optional path for the JSON run report (entities + stats)")
		workers   = flag.Int("workers", 1, "documents processed concurrently")
		verbose   = flag.Bool("v", false, "print extracted entities")

		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); a partial result is still written")
		maxFailures = flag.Float64("max-doc-failures", 0, "fraction of documents in [0,1] that may fail before the run aborts (0 = abort on first failure)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof/* and /debug/thor/* on this address")
		metricsJSON = flag.String("metrics-json", "", "write the final metrics snapshot (counters + stage histograms) to this file")
		traceOut    = flag.String("trace-out", "", "write a runtime execution trace to this file")
		explain     = flag.Bool("explain", false, "attach fill provenance (source doc, matched seed, scores, τ) to each assignment in the -report")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: thor -table table.json -docs dir/ [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nExit codes:\n"+
				"  0  success\n"+
				"  1  fatal error, or run aborted/cancelled (partial outputs written)\n"+
				"  2  usage error\n"+
				"  3  run completed but quarantined at least one document (outputs written)\n")
	}
	flag.Parse()
	// Validate everything up front: a bad flag should fail in milliseconds
	// with a usage message, not after minutes of extraction.
	if *tablePath == "" || *docsDir == "" {
		usageErr("-table and -docs are required")
	}
	if *tau < 0 || *tau > 1 {
		usageErr(fmt.Sprintf("-tau %v is outside [0,1]", *tau))
	}
	if *workers < 0 {
		usageErr(fmt.Sprintf("-workers %d is negative", *workers))
	}
	if *maxFailures < 0 || *maxFailures > 1 {
		usageErr(fmt.Sprintf("-max-doc-failures %v is outside [0,1]", *maxFailures))
	}
	if *timeout < 0 {
		usageErr(fmt.Sprintf("-timeout %v is negative", *timeout))
	}
	if strings.EqualFold(filepath.Ext(*tablePath), ".csv") && *subject == "" {
		usageErr("CSV tables need -subject <concept> to name the subject column")
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		usageErr(err.Error())
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		usageErr(err.Error())
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logger.Info("debug server up", "url", "http://"+srv.Addr+"/debug/vars")
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}

	table, err := loadTable(*tablePath, schema.Concept(*subject))
	if err != nil {
		fatal(err)
	}
	docs, err := loadDocs(*docsDir, table)
	if err != nil {
		fatal(err)
	}
	if len(docs) == 0 {
		fatal(fmt.Errorf("no .txt documents in %s", *docsDir))
	}

	space := selfSpace(table)
	if *vectors != "" {
		f, err := os.Open(*vectors)
		if err != nil {
			fatal(err)
		}
		space, err = embed.ReadSpace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, runErr := thor.RunContext(ctx, table, space, docs, thor.Config{
		Tau:                *tau,
		Workers:            *workers,
		MaxFailureFraction: *maxFailures,
		Metrics:            reg,
		Tracer:             tracer,
		Explain:            *explain,
		Logger:             logger,
	})
	if runErr != nil && res == nil {
		fatal(runErr)
	}
	// An aborted or cancelled run still carries a well-formed partial
	// result; report what happened, write everything we have, exit 1.
	for _, f := range res.Stats.Quarantined {
		logger.Warn("document quarantined", obs.LogDocID, f.Doc, "detail", f.String())
	}
	if runErr != nil {
		var aborted *thor.RunAbortedError
		switch {
		case errors.As(runErr, &aborted):
			logger.Error("run aborted", "error", runErr.Error())
		case errors.Is(runErr, context.DeadlineExceeded):
			logger.Error("run hit the -timeout deadline", "timeout", timeout.String(), "error", runErr.Error())
		default:
			logger.Error("run failed", "error", runErr.Error())
		}
		logger.Warn("partial result",
			"completed", len(res.Stats.CompletedDocs), "documents", res.Stats.Documents)
	}
	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fatal(err)
		}
		err = reg.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
	if *report != "" {
		rf, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		err = res.WriteReport(rf)
		rf.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *verbose {
		for _, e := range res.AllEntities() {
			fmt.Fprintf(os.Stderr, "%-24s %-18s %s\n", e.Subject, e.Concept, e.Phrase)
		}
	}
	logger.Info("run complete",
		"docs", res.Stats.Documents,
		"sentences", res.Stats.Sentences,
		"entities", res.Stats.Entities,
		"filled", res.Stats.Filled,
		"elapsed", res.Stats.Total().Round(1e6).String())

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		err = res.Table.WriteJSON(out)
	case "csv":
		err = res.Table.WriteCSV(out)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	switch {
	case runErr != nil:
		return 1 // aborted or cancelled (partial outputs were written)
	case len(res.Stats.Quarantined) > 0:
		return 3 // completed, but some documents were quarantined
	}
	return 0
}

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "thor:", msg)
	flag.Usage()
	os.Exit(2)
}

func loadTable(path string, subject schema.Concept) (*schema.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return schema.ReadJSON(f)
	case ".csv":
		if subject == "" {
			return nil, fmt.Errorf("-subject is required for CSV tables")
		}
		return schema.ReadCSV(f, subject)
	default:
		return nil, fmt.Errorf("unsupported table format %q", filepath.Ext(path))
	}
}

func loadDocs(dir string, table *schema.Table) ([]segment.Document, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var docs []segment.Document
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(e.Name(), ".txt")
		// A file named after a subject row becomes that subject's document.
		defaultSubject := ""
		candidate := strings.ReplaceAll(name, "-", " ")
		if row := table.Row(candidate); row != nil {
			defaultSubject = row.Subject
		}
		docs = append(docs, segment.Document{
			Name:           name,
			DefaultSubject: defaultSubject,
			Text:           string(body),
		})
	}
	return docs, nil
}

// selfSpace builds an embedding space from the table's own instances: words
// of each column cluster around a per-concept centroid, and unknown document
// words fall back to subword hashing. It is the zero-configuration space the
// CLI ships with.
func selfSpace(table *schema.Table) *embed.Space {
	space := embed.NewSpace()
	for _, c := range table.Schema.Concepts {
		centroid := embed.HashVector("cli-centroid:" + string(c))
		for _, v := range table.ColumnValues(c) {
			for _, w := range strings.Fields(text.NormalizePhrase(v)) {
				if space.Contains(w) {
					continue
				}
				space.Add(w, embed.Blend(centroid, embed.SubwordVector(w), 0.6))
			}
		}
	}
	return space
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thor:", err)
	os.Exit(1)
}
