// Command thor runs the THOR pipeline over a user-supplied table and
// documents and writes the enriched table.
//
// Usage:
//
//	thor -table table.json -docs dir/ [-tau 0.7] [-subject Disease] [-out out.json] [-format json|csv]
//
// The table is JSON (see schema.WriteJSON) or CSV with a header row; the
// documents directory holds one .txt file per document (the file name,
// without extension and with dashes as spaces, is used as the document's
// default subject when it matches a table row). The embedding space is built
// from the table's own instances plus subword hashing, so the command works
// out of the box; programmatic users can supply richer spaces via the
// library API.
//
// Robustness flags: -timeout bounds the whole run (a partial result is still
// written), and -max-doc-failures sets the fraction of documents that may be
// quarantined before the run aborts. Exit codes: 0 success, 1 fatal error or
// aborted/cancelled run, 2 usage error, 3 run completed but quarantined at
// least one document (outputs are written).
package main
