// Command promlint validates a Prometheus/OpenMetrics text exposition — the
// scrape-and-lint gate CI runs against a live thord's /metrics.
//
// Usage:
//
//	promlint [-require fam1,fam2_,...] [file]
//
// The exposition is read from the file argument, or stdin when absent. Every
// syntax error or lint finding (see internal/promtext) is reported and fails
// the run. -require lists metric families that must be present: exact names,
// or prefixes when the entry ends in '_' or '*'. Exit status 0 when clean,
// 1 on findings, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"thor/internal/promtext"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

// run is the testable entry point: args excludes the program name; exit
// status as documented on the package.
func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	require := fs.String("require", "", "comma-separated metric families that must be present (suffix '_' or '*' for a prefix match)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "promlint: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(stderr, "promlint: at most one input file")
		return 2
	}

	exp, err := promtext.Parse(in)
	failed := false
	if err != nil {
		fmt.Fprintf(stderr, "promlint: syntax: %v\n", err)
		failed = true
	}
	probs := promtext.Lint(exp)
	if *require != "" {
		var want []string
		for _, f := range strings.Split(*require, ",") {
			if f = strings.TrimSpace(f); f != "" {
				want = append(want, f)
			}
		}
		probs = append(probs, promtext.RequireFamilies(exp, want)...)
	}
	for _, p := range probs {
		fmt.Fprintf(stderr, "promlint: %s\n", p)
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Fprintf(stderr, "promlint: ok (%d families)\n", len(exp.Families))
	return 0
}
