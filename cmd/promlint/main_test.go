package main

import (
	"strings"
	"testing"
)

const goodExposition = `# TYPE thor_docs counter
thor_docs_total 42
# TYPE thor_stage_fill_seconds histogram
thor_stage_fill_seconds_bucket{le="0.001"} 3
thor_stage_fill_seconds_bucket{le="+Inf"} 4
thor_stage_fill_seconds_sum 0.25
thor_stage_fill_seconds_count 4
# EOF
`

func TestRunClean(t *testing.T) {
	var errb strings.Builder
	if code := run(nil, strings.NewReader(goodExposition), &errb); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
}

func TestRunRequire(t *testing.T) {
	var errb strings.Builder
	code := run([]string{"-require", "thor_docs,thor_sparsity_*"},
		strings.NewReader(goodExposition), &errb)
	if code != 1 || !strings.Contains(errb.String(), "thor_sparsity_") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
}

func TestRunMalformed(t *testing.T) {
	bad := "# TYPE x counter\nx_total{le=oops} 1\n# EOF\n"
	var errb strings.Builder
	if code := run(nil, strings.NewReader(bad), &errb); code != 1 {
		t.Fatalf("exit = %d for malformed input, stderr:\n%s", code, errb.String())
	}
}

func TestRunMissingEOF(t *testing.T) {
	var errb strings.Builder
	code := run(nil, strings.NewReader("# TYPE x counter\nx_total 1\n"), &errb)
	if code != 1 || !strings.Contains(errb.String(), "EOF") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
}
