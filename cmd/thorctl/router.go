package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"thor/internal/router"
)

// RouterStatus is one polled thor-router's topology view.
type RouterStatus struct {
	// Target is the router's host:port as given on the command line.
	Target string `json:"target"`
	// Err is the poll failure, if any; Topology is then nil.
	Err string `json:"error,omitempty"`
	// Topology is the router's live /v1/topology snapshot.
	Topology *router.Topology `json:"topology,omitempty"`
	// OpenBreakers lists "shard/backend" pairs whose circuit breaker is
	// currently open — the condition thorctl exits 1 on.
	OpenBreakers []string `json:"openBreakers,omitempty"`
	// DownShards lists shards with no selectable replica left.
	DownShards []string `json:"downShards,omitempty"`
}

// pollRouter scrapes one router's /v1/topology.
func pollRouter(client *http.Client, target string) *RouterStatus {
	st := &RouterStatus{Target: target}
	resp, err := client.Get("http://" + target + "/v1/topology")
	if err != nil {
		st.Err = fmt.Sprintf("topology: %v", err)
		return st
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		st.Err = fmt.Sprintf("topology: status %d", resp.StatusCode)
		return st
	}
	var topo router.Topology
	if err := json.Unmarshal(body, &topo); err != nil {
		st.Err = fmt.Sprintf("topology: %v", err)
		return st
	}
	st.Topology = &topo
	for _, sh := range topo.Shards {
		if !sh.Available {
			st.DownShards = append(st.DownShards, sh.ID)
		}
		for _, b := range sh.Backends {
			if b.Breaker == "open" {
				st.OpenBreakers = append(st.OpenBreakers, sh.ID+"/"+strings.TrimPrefix(b.URL, "http://"))
			}
		}
	}
	sort.Strings(st.OpenBreakers)
	sort.Strings(st.DownShards)
	return st
}

// backendTargets flattens the topology into pollable host:port targets, for
// the fleet view when -targets is not given explicitly.
func (st *RouterStatus) backendTargets() []string {
	if st.Topology == nil {
		return nil
	}
	var out []string
	for _, sh := range st.Topology.Shards {
		for _, b := range sh.Backends {
			t := strings.TrimPrefix(b.URL, "http://")
			t = strings.TrimPrefix(t, "https://")
			out = append(out, t)
		}
	}
	return out
}

// renderRouter prints the router's per-backend health/breaker table.
func renderRouter(w io.Writer, st *RouterStatus) {
	if st.Err != "" {
		fmt.Fprintf(w, "router %s: unreachable: %s\n", st.Target, st.Err)
		return
	}
	nb := 0
	for _, sh := range st.Topology.Shards {
		nb += len(sh.Backends)
	}
	fmt.Fprintf(w, "router %s — %d shard(s), %d backend(s), %d open breaker(s)\n",
		st.Target, len(st.Topology.Shards), nb, len(st.OpenBreakers))
	fmt.Fprintf(w, "%-14s %-24s %-9s %-9s %8s %9s %9s %10s %8s\n",
		"SHARD", "BACKEND", "HEALTH", "BREAKER", "BURN", "P50", "P95", "REQUESTS", "ERRORS")
	for _, sh := range st.Topology.Shards {
		shard := sh.ID
		if !sh.Available {
			shard += "(!)"
		}
		for _, b := range sh.Backends {
			fmt.Fprintf(w, "%-14s %-24s %-9s %-9s %8.2f %9s %9s %10d %8d\n",
				shard, strings.TrimPrefix(b.URL, "http://"), b.Health, b.Breaker, b.BurnRate,
				humanSeconds(b.P50MS/1e3), humanSeconds(b.P95MS/1e3), b.Requests, b.Errors)
			shard = "" // print the shard id once per group
		}
	}
	if len(st.DownShards) > 0 {
		fmt.Fprintf(w, "DOWN SHARDS: %s\n", strings.Join(st.DownShards, ", "))
	}
}
