package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thor/internal/obs"
)

func TestMergeEventsFleetTimeline(t *testing.T) {
	t0 := time.Unix(1000, 0)
	frags := []eventsFragment{
		{Target: "b:7072", Export: &obs.JournalExport{Node: "b:7072", Total: 2, Events: []obs.JournalEvent{
			{Seq: 1, Time: t0.Add(2 * time.Second), Kind: obs.EventTableSwap, Previous: 1, Version: 2, Concepts: []string{"Color"}},
			{Seq: 2, Time: t0.Add(4 * time.Second), Kind: obs.EventSLO, From: "healthy", To: "degraded", Subject: "fill"},
		}}},
		{Target: "a:7071", Export: &obs.JournalExport{Node: "a:7071", Total: 3, Dropped: 1, Events: []obs.JournalEvent{
			{Seq: 2, Time: t0.Add(time.Second), Kind: obs.EventBreaker, Subject: "b1", From: "closed", To: "open"},
			{Seq: 3, Time: t0.Add(3 * time.Second), Kind: obs.EventBreaker, Subject: "b1", From: "open", To: "half-open"},
		}}},
		{Target: "down:1", Err: errFake("refused")},
	}
	tl := mergeEvents(frags)
	if len(tl.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(tl.Events))
	}
	// Time-sorted across nodes, each stamped with its node.
	wantOrder := []struct{ node, kind string }{
		{"a:7071", obs.EventBreaker},
		{"b:7072", obs.EventTableSwap},
		{"a:7071", obs.EventBreaker},
		{"b:7072", obs.EventSLO},
	}
	for i, w := range wantOrder {
		if tl.Events[i].Node != w.node || tl.Events[i].Kind != w.kind {
			t.Fatalf("event %d = %s/%s, want %s/%s",
				i, tl.Events[i].Node, tl.Events[i].Kind, w.node, w.kind)
		}
	}
	if tl.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", tl.Dropped)
	}
	if len(tl.Errors) != 1 || !strings.Contains(tl.Errors[0], "down:1") {
		t.Fatalf("errors = %v", tl.Errors)
	}
	if len(tl.Nodes) != 2 || tl.Nodes[0] != "a:7071" {
		t.Fatalf("nodes = %v", tl.Nodes)
	}
}

func TestMergeEventsTieBreaksBySeq(t *testing.T) {
	t0 := time.Unix(1000, 0)
	frags := []eventsFragment{
		{Target: "n", Export: &obs.JournalExport{Node: "n", Events: []obs.JournalEvent{
			{Seq: 1, Time: t0, Kind: obs.EventDrain, To: "begin"},
			{Seq: 2, Time: t0, Kind: obs.EventDrain, To: "end"},
		}}},
	}
	tl := mergeEvents(frags)
	if tl.Events[0].To != "begin" || tl.Events[1].To != "end" {
		t.Fatalf("wall-clock tie not broken by seq: %+v", tl.Events)
	}
}

func TestRunEventsFansOut(t *testing.T) {
	j1 := obs.NewJournal(obs.JournalConfig{Node: "node-one"})
	j1.Append(obs.JournalEvent{Kind: obs.EventBreaker, Subject: "b2:7072", From: "closed", To: "open"})
	j2 := obs.NewJournal(obs.JournalConfig{Node: "node-two"})
	j2.Append(obs.JournalEvent{Kind: obs.EventTableSwap, Previous: 4, Version: 5, Concepts: []string{"Brand"}})

	srv1 := httptest.NewServer(obs.DebugHandler(obs.DebugOptions{Journal: j1}))
	defer srv1.Close()
	srv2 := httptest.NewServer(obs.DebugHandler(obs.DebugOptions{Journal: j2}))
	defer srv2.Close()
	targets := []string{
		strings.TrimPrefix(srv1.URL, "http://"),
		strings.TrimPrefix(srv2.URL, "http://"),
	}

	var stdout bytes.Buffer
	if code := runEvents(http.DefaultClient, &stdout, targets, true); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var tl FleetTimeline
	if err := json.Unmarshal(stdout.Bytes(), &tl); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if len(tl.Events) != 2 || len(tl.Nodes) != 2 {
		t.Fatalf("timeline wrong: %+v", tl)
	}

	stdout.Reset()
	if code := runEvents(http.DefaultClient, &stdout, targets, false); code != 0 {
		t.Fatalf("text exit = %d", code)
	}
	out := stdout.String()
	for _, want := range []string{"node-one", "node-two", "breaker", "closed→open", "v4→v5", "invalidated: Brand"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// An unreachable node exits 1 but still renders the reachable ones.
	stdout.Reset()
	code := runEvents(http.DefaultClient, &stdout, append(targets, "127.0.0.1:1"), false)
	if code != 1 {
		t.Fatalf("unreachable node should exit 1, got %d", code)
	}
	if !strings.Contains(stdout.String(), "node-one") {
		t.Fatal("reachable nodes dropped from partial timeline")
	}
}
