// Command thorctl aggregates a fleet of thord instances into one status
// view: it polls each instance's /metrics and /readyz, merges histograms by
// summing cumulative buckets (so fleet quantiles stay monotone), and
// renders a status table — the observational substrate a sharded serving
// tier's router will sit on.
//
// Usage:
//
//	thorctl -targets 127.0.0.1:7071,127.0.0.1:7072 [-watch 5s] [-json] [-timeout 2s]
//	thorctl -router 127.0.0.1:8090 [flags]
//
// One-shot by default; -watch re-polls at the given interval until
// interrupted. -json emits the FleetStatus as JSON (one document per poll)
// for CI and scripting. -router additionally polls a thor-router's
// /v1/topology and renders the per-backend health/breaker table above the
// fleet view; when -targets is omitted the fleet targets are derived from
// the topology. The exit status is 0 when every instance is ready and
// healthy, 1 when any instance is degraded, draining or unreachable, or when
// replicas of one shard disagree on the live-table version (thor_table_version
// skew: a POST /v1/table mutation reached some replicas and not others) — or,
// with -router, when any backend's circuit breaker is open or the router is
// unreachable (one-shot mode only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; exit status as documented above.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thorctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targetsFlag := fs.String("targets", "", "comma-separated thord instances (host:port); required unless -router is given")
	routerFlag := fs.String("router", "", "thor-router endpoint (host:port); renders per-backend health/breaker state from /v1/topology")
	watch := fs.Duration("watch", 0, "re-poll at this interval (0 = one shot)")
	asJSON := fs.Bool("json", false, "emit JSON instead of the status table")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	traceID := fs.String("trace", "", "stitch this trace ID: fetch span fragments from every node (router + topology backends) and render one causal tree")
	events := fs.Bool("events", false, "merge every node's /debug/events journal into one fleet timeline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *traceID != "" && *events {
		fmt.Fprintln(stderr, "thorctl: -trace and -events are mutually exclusive")
		return 2
	}
	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	routerTarget := strings.TrimSpace(*routerFlag)
	if len(targets) == 0 && routerTarget == "" {
		fmt.Fprintln(stderr, "thorctl: -targets or -router is required")
		fs.Usage()
		return 2
	}
	client := &http.Client{Timeout: *timeout}

	if *traceID != "" || *events {
		nodes := fleetNodes(client, targets, routerTarget, stderr)
		if *traceID != "" {
			return runTrace(client, stdout, stderr, *traceID, nodes, *asJSON)
		}
		return runEvents(client, stdout, nodes, *asJSON)
	}

	for {
		var rst *RouterStatus
		if routerTarget != "" {
			rst = pollRouter(client, routerTarget)
		}
		pollTargets := targets
		if len(pollTargets) == 0 && rst != nil {
			// Derive the fleet from the router's live topology.
			pollTargets = rst.backendTargets()
		}
		st := poll(client, pollTargets, time.Now())
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if rst != nil {
				_ = enc.Encode(struct {
					Router *RouterStatus `json:"router"`
					Fleet  *FleetStatus  `json:"fleet"`
				}{rst, st})
			} else {
				_ = enc.Encode(st)
			}
		} else {
			if rst != nil {
				renderRouter(stdout, rst)
				fmt.Fprintln(stdout)
			}
			render(stdout, st)
		}
		if *watch <= 0 {
			if len(st.Degraded) > 0 || len(st.VersionSkew) > 0 {
				return 1
			}
			if rst != nil && (rst.Err != "" || len(rst.OpenBreakers) > 0) {
				return 1
			}
			return 0
		}
		time.Sleep(*watch)
	}
}

// fleetNodes assembles the -trace/-events fan-out set: the explicit targets,
// plus — when a router is given — the router itself and every backend in its
// live /v1/topology, deduplicated in first-appearance order.
func fleetNodes(client *http.Client, targets []string, routerTarget string, stderr io.Writer) []string {
	var nodes []string
	seen := make(map[string]bool)
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			nodes = append(nodes, t)
		}
	}
	if routerTarget != "" {
		add(routerTarget)
		rst := pollRouter(client, routerTarget)
		if rst.Err != "" {
			fmt.Fprintf(stderr, "thorctl: router %s: %s (continuing with explicit targets)\n", routerTarget, rst.Err)
		}
		for _, t := range rst.backendTargets() {
			add(t)
		}
	}
	for _, t := range targets {
		add(t)
	}
	return nodes
}

// render prints the fleet table: one row per instance, then the merged
// histogram quantiles.
func render(w io.Writer, st *FleetStatus) {
	fmt.Fprintf(w, "fleet status @ %s — %d instance(s), %d degraded\n",
		st.PolledAt.Format(time.RFC3339), len(st.Instances), len(st.Degraded))
	fmt.Fprintf(w, "%-24s %-10s %-9s %7s %11s %12s %12s\n",
		"TARGET", "READY", "DEGRADED", "TABLE", "GOROUTINES", "HEAP", "FILL REQS")
	for _, inst := range st.Instances {
		if inst.Err != "" {
			fmt.Fprintf(w, "%-24s %-10s %s\n", inst.Target, "unreachable", inst.Err)
			continue
		}
		ready := inst.ReadyDetail
		if ready == "" {
			if inst.Ready {
				ready = "ok"
			} else {
				ready = "not-ready"
			}
		}
		version := "-"
		if inst.TableVersion > 0 {
			version = fmt.Sprintf("v%d", inst.TableVersion)
		}
		fmt.Fprintf(w, "%-24s %-10s %-9v %7s %11d %12s %12.0f\n",
			inst.Target, ready, inst.Degraded, version, inst.Goroutines,
			humanBytes(inst.HeapBytes), inst.Counters["serve_fill_requests"])
	}
	if len(st.VersionSkew) > 0 {
		fmt.Fprintf(w, "TABLE VERSION SKEW: %s\n", strings.Join(st.VersionSkew, "; "))
	}
	names := make([]string, 0, len(st.Histograms))
	for n := range st.Histograms {
		if st.Histograms[n].Count > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "\nmerged histograms (fleet-wide, %d instance(s)):\n", len(st.Instances))
		fmt.Fprintf(w, "%-40s %10s %10s %10s %10s\n", "FAMILY", "COUNT", "P50", "P90", "P99")
		for _, n := range names {
			h := st.Histograms[n]
			fmt.Fprintf(w, "%-40s %10.0f %10s %10s %10s\n",
				n, h.Count, humanSeconds(h.P50), humanSeconds(h.P90), humanSeconds(h.P99))
		}
	}
}

// humanBytes renders a byte count compactly.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// humanSeconds renders a seconds value compactly.
func humanSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}
