package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"thor/internal/obs"
)

// traceFragment is one node's answer to the -trace fan-out: its retained
// span fragment for the trace, or why it had none.
type traceFragment struct {
	// Target is the host:port the fragment was fetched from.
	Target string
	// Export is the node's fragment; nil when the node does not retain the
	// trace (a 404 — normal for nodes the request never touched).
	Export *obs.TraceExport
	// Err is the fetch failure, if any (nil for a clean 404).
	Err error
}

// fetchTraceExport fetches one node's durable span fragment for a trace via
// /debug/traces/{id}?format=export.
func fetchTraceExport(client *http.Client, target, id string) traceFragment {
	frag := traceFragment{Target: target}
	resp, err := client.Get("http://" + target + "/debug/traces/" + id + "?format=export")
	if err != nil {
		frag.Err = err
		return frag
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		frag.Err = err
		return frag
	}
	if resp.StatusCode == http.StatusNotFound {
		return frag // this node never saw (or no longer retains) the trace
	}
	if resp.StatusCode != http.StatusOK {
		frag.Err = fmt.Errorf("status %d", resp.StatusCode)
		return frag
	}
	var te obs.TraceExport
	if err := json.Unmarshal(body, &te); err != nil {
		frag.Err = fmt.Errorf("decode export: %w", err)
		return frag
	}
	if te.Node == "" {
		te.Node = target
	}
	frag.Export = &te
	return frag
}

// StitchedSpan is one span in the stitched fleet-wide tree: the wire span
// plus which node recorded it and its resolved children.
type StitchedSpan struct {
	obs.SpanExport
	// Node is the process that recorded the span.
	Node string `json:"node"`
	// Children are the span's resolved child spans, sorted by start time.
	Children []*StitchedSpan `json:"children,omitempty"`
}

// StitchedTrace is the fleet-wide view of one trace: every fragment's spans
// merged into causal trees keyed on the shared W3C trace ID.
type StitchedTrace struct {
	// TraceID is the stitched trace (32 hex digits).
	TraceID string `json:"traceId"`
	// Nodes lists the processes that contributed spans, sorted.
	Nodes []string `json:"nodes"`
	// SpanCount is the total stitched span count across nodes.
	SpanCount int `json:"spanCount"`
	// Roots are the causal trees, sorted by start time. More than one root
	// is possible when a parent span was dropped or not retained anywhere.
	Roots []*StitchedSpan `json:"roots"`
	// Errors lists nodes that could not be polled ("target: error").
	Errors []string `json:"errors,omitempty"`
}

// stitchTrace merges the fragments' spans into causal trees. Spans are keyed
// by span ID (first sighting wins — hedged duplicates share a trace but
// carry distinct span IDs, so both branches survive); children resolve
// against parents recorded by any node, which is the whole point: the
// router's per-backend client span parents the backend's server-side root.
func stitchTrace(id string, frags []traceFragment) *StitchedTrace {
	st := &StitchedTrace{TraceID: strings.ToLower(id)}
	byID := make(map[string]*StitchedSpan)
	var order []*StitchedSpan
	nodes := make(map[string]bool)
	for _, f := range frags {
		if f.Err != nil {
			st.Errors = append(st.Errors, f.Target+": "+f.Err.Error())
			continue
		}
		if f.Export == nil {
			continue
		}
		for _, sp := range f.Export.Spans {
			if byID[sp.SpanID] != nil {
				continue
			}
			ss := &StitchedSpan{SpanExport: sp, Node: f.Export.Node}
			byID[sp.SpanID] = ss
			order = append(order, ss)
			nodes[f.Export.Node] = true
		}
	}
	for _, ss := range order {
		if p := byID[ss.ParentID]; p != nil && p != ss {
			p.Children = append(p.Children, ss)
		} else {
			st.Roots = append(st.Roots, ss)
		}
	}
	var sortTree func(s []*StitchedSpan)
	sortTree = func(s []*StitchedSpan) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].SpanID < s[j].SpanID
		})
		for _, c := range s {
			sortTree(c.Children)
		}
	}
	sortTree(st.Roots)
	for n := range nodes {
		st.Nodes = append(st.Nodes, n)
	}
	sort.Strings(st.Nodes)
	st.SpanCount = len(order)
	sort.Strings(st.Errors)
	return st
}

// runTrace is the -trace mode: fan out to every node, stitch, render. Exit 0
// when at least one fragment was found and every node answered, 1 otherwise.
func runTrace(client *http.Client, stdout, stderr io.Writer, id string, targets []string, asJSON bool) int {
	frags := make([]traceFragment, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t string) {
			defer wg.Done()
			frags[i] = fetchTraceExport(client, t, id)
		}(i, t)
	}
	wg.Wait()
	st := stitchTrace(id, frags)
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	} else {
		renderTrace(stdout, st)
	}
	if st.SpanCount == 0 {
		fmt.Fprintf(stderr, "thorctl: trace %s not retained by any of %d node(s)\n", id, len(targets))
		return 1
	}
	if len(st.Errors) > 0 {
		return 1
	}
	return 0
}

// renderTrace prints the stitched trees with node attribution, one line per
// span plus its recorded events.
func renderTrace(w io.Writer, st *StitchedTrace) {
	fmt.Fprintf(w, "trace %s — %d span(s) from %d node(s): %s\n",
		st.TraceID, st.SpanCount, len(st.Nodes), strings.Join(st.Nodes, ", "))
	for _, e := range st.Errors {
		fmt.Fprintf(w, "  unreachable: %s\n", e)
	}
	for _, r := range st.Roots {
		renderSpan(w, r, "", true)
	}
}

// renderSpan prints one span and recurses into its children.
func renderSpan(w io.Writer, s *StitchedSpan, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	var attrs strings.Builder
	for _, a := range s.Attrs {
		fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintf(w, "%s%s%-32s %9s  [%s]%s\n",
		prefix, branch, s.Name,
		humanSeconds(time.Duration(s.DurationNanos).Seconds()), s.Node, attrs.String())
	for _, ev := range s.Events {
		var evAttrs strings.Builder
		for _, a := range ev.Attrs {
			fmt.Fprintf(&evAttrs, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(w, "%s· %s%s\n", childPrefix, ev.Name, evAttrs.String())
	}
	for i, c := range s.Children {
		renderSpan(w, c, childPrefix, i == len(s.Children)-1)
	}
}
