package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thor/internal/chaos"
	"thor/internal/router"
)

// startRouter mounts an in-process thor-router over the given shard map and
// returns its host:port.
func startRouter(t *testing.T, shards router.ShardMap) string {
	t.Helper()
	rt, err := router.New(router.Options{
		Shards:         shards,
		HealthInterval: -1,
		Retry:          chaos.Backoff{Attempts: 1, Base: time.Millisecond, Cap: time.Millisecond},
		Breaker:        router.BreakerConfig{Threshold: 1, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestRouterModeHealthy pins the happy path: -router renders the
// per-backend table, derives the fleet targets from the topology when
// -targets is omitted, and exits 0 while every breaker is closed.
func TestRouterModeHealthy(t *testing.T) {
	backend, _ := startInstance(t)
	routerAddr := startRouter(t, router.SingleShard([]string{backend}))

	var out, errb strings.Builder
	code := run([]string{"-router", routerAddr}, &out, &errb)
	if code != 0 {
		t.Fatalf("healthy router exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "closed") || !strings.Contains(s, "healthy") {
		t.Fatalf("router table missing health/breaker state:\n%s", s)
	}
	// The fleet view below the router table polled the topology-derived
	// backend.
	if !strings.Contains(s, backend) {
		t.Fatalf("fleet view did not include the topology-derived backend %s:\n%s", backend, s)
	}

	// -json wraps both views.
	out.Reset()
	code = run([]string{"-router", routerAddr, "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-json exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), `"router"`) || !strings.Contains(out.String(), `"fleet"`) {
		t.Fatalf("-json output missing router/fleet sections:\n%s", out.String())
	}
}

// TestRouterModeOpenBreakerExits1 pins the alerting contract: once any
// backend's circuit breaker is open, thorctl -router exits 1 and names the
// breaker in its table.
func TestRouterModeOpenBreakerExits1(t *testing.T) {
	healthy, _ := startInstance(t)
	dead := "127.0.0.1:1" // nothing listens: connections refuse immediately
	routerAddr := startRouter(t, router.ShardMap{Shards: []router.ShardConfig{
		{ID: "alive", Backends: []string{healthy}},
		{ID: "dead", Backends: []string{dead}},
	}})

	// One fan-out fill opens the dead shard's breaker (threshold 1).
	resp, err := http.Post("http://"+routerAddr+"/v1/fill", "application/json",
		strings.NewReader(`{"documents":[{"name":"d","default_subject":"Malaria","text":"Malaria damages the nervous system."}]}`))
	if err != nil {
		t.Fatalf("fill: %v", err)
	}
	resp.Body.Close()

	// Poll the healthy backend explicitly so the exit code isolates the
	// open-breaker condition rather than an unreachable fleet target.
	var out, errb strings.Builder
	code := run([]string{"-router", routerAddr, "-targets", healthy}, &out, &errb)
	if code != 1 {
		t.Fatalf("open-breaker exit = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "open") || !strings.Contains(s, dead) {
		t.Fatalf("router table does not surface the open breaker:\n%s", s)
	}
	if !strings.Contains(s, "1 open breaker(s)") {
		t.Fatalf("router header does not count the open breaker:\n%s", s)
	}
}
