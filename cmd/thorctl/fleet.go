package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"thor/internal/promtext"
)

// InstanceStatus is one polled thord instance's view.
type InstanceStatus struct {
	// Target is the instance's host:port as given on the command line.
	Target string `json:"target"`
	// Err is the poll failure, if any; the other fields are then zero.
	Err string `json:"error,omitempty"`
	// Ready reports a 200 from /readyz.
	Ready bool `json:"ready"`
	// ReadyDetail is /readyz's status string ("ok", "degraded", "draining").
	ReadyDetail string `json:"readyDetail,omitempty"`
	// Degraded reports the thor_slo_degraded gauge (falls back to the
	// /readyz detail when the gauge is absent).
	Degraded bool `json:"degraded"`
	// Shard is the shard the instance reports on /readyz (empty when the
	// instance runs unsharded).
	Shard string `json:"shard,omitempty"`
	// TableVersion is the instance's live-table version (the
	// thor_table_version gauge); zero when the instance predates live tables.
	TableVersion uint64 `json:"tableVersion,omitempty"`
	// Goroutines and HeapBytes are the instance's runtime gauges.
	Goroutines int64 `json:"goroutines"`
	// HeapBytes is the live heap size in bytes.
	HeapBytes int64 `json:"heapBytes"`
	// Counters holds the instance's counter families, summed across label
	// sets (e.g. "serve_fill_requests" -> total requests).
	Counters map[string]float64 `json:"counters,omitempty"`
	// Families is the number of metric families scraped.
	Families int `json:"families"`

	exp *promtext.Exposition
}

// MergedHistogram is one histogram family merged across the fleet by
// summing cumulative bucket counts — the merged quantiles are monotone by
// construction.
type MergedHistogram struct {
	// Count is the total observation count across instances.
	Count float64 `json:"count"`
	// Sum is the summed _sum across instances.
	Sum float64 `json:"sum"`
	// P50, P90 and P99 are bucket-interpolated quantiles of the merged
	// distribution, in the family's native unit (seconds).
	P50 float64 `json:"p50"`
	// P90 is the merged 90th percentile.
	P90 float64 `json:"p90"`
	// P99 is the merged 99th percentile.
	P99 float64 `json:"p99"`
	// Instances is the number of instances contributing observations.
	Instances int `json:"instances"`
}

// FleetStatus is one aggregation pass over every target.
type FleetStatus struct {
	// PolledAt is the aggregation wall-clock time.
	PolledAt time.Time `json:"polledAt"`
	// Instances are the per-target views, in command-line order.
	Instances []InstanceStatus `json:"instances"`
	// Histograms maps histogram family names to their fleet-wide merges.
	Histograms map[string]MergedHistogram `json:"histograms,omitempty"`
	// Counters sums counter families fleet-wide.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Degraded lists the targets currently degraded or unreachable.
	Degraded []string `json:"degraded,omitempty"`
	// VersionSkew lists shards whose replicas disagree on the live-table
	// version — replicas of one shard answering from different table
	// contents, which thorctl exits 1 on. Unsharded instances are compared as
	// one group.
	VersionSkew []string `json:"versionSkew,omitempty"`
}

// pollInstance scrapes one target's /readyz and /metrics.
func pollInstance(client *http.Client, target string) InstanceStatus {
	st := InstanceStatus{Target: target}
	base := "http://" + target

	if resp, err := client.Get(base + "/readyz"); err != nil {
		st.Err = fmt.Sprintf("readyz: %v", err)
		return st
	} else {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		st.Ready = resp.StatusCode == http.StatusOK
		var rz struct {
			Status string `json:"status"`
			Shard  string `json:"shard"`
		}
		if json.Unmarshal(body, &rz) == nil {
			st.ReadyDetail = rz.Status
			st.Shard = rz.Shard
		}
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		st.Err = fmt.Sprintf("metrics: %v", err)
		return st
	}
	defer resp.Body.Close()
	exp, err := promtext.Parse(resp.Body)
	if err != nil {
		st.Err = fmt.Sprintf("metrics: %v", err)
		return st
	}
	st.exp = exp
	st.Families = len(exp.Families)
	st.Counters = make(map[string]float64)
	for name, f := range exp.Families {
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_total") {
					st.Counters[name] += s.Value
				}
			}
		case "gauge":
			switch name {
			case "go_goroutines":
				if len(f.Samples) > 0 {
					st.Goroutines = int64(f.Samples[0].Value)
				}
			case "go_memory_heap_objects_bytes":
				if len(f.Samples) > 0 {
					st.HeapBytes = int64(f.Samples[0].Value)
				}
			case "thor_slo_degraded":
				if len(f.Samples) > 0 && f.Samples[0].Value >= 1 {
					st.Degraded = true
				}
			case "thor_table_version":
				if len(f.Samples) > 0 && f.Samples[0].Value > 0 {
					st.TableVersion = uint64(f.Samples[0].Value)
				}
			}
		}
	}
	if !st.Degraded && st.ReadyDetail == "degraded" {
		st.Degraded = true
	}
	return st
}

// poll scrapes every target concurrently and merges the fleet view.
func poll(client *http.Client, targets []string, now time.Time) *FleetStatus {
	fs := &FleetStatus{
		PolledAt:   now,
		Instances:  make([]InstanceStatus, len(targets)),
		Histograms: make(map[string]MergedHistogram),
		Counters:   make(map[string]float64),
	}
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			fs.Instances[i] = pollInstance(client, target)
		}(i, target)
	}
	wg.Wait()

	merge := newHistMerger()
	for _, inst := range fs.Instances {
		if inst.Err != "" || inst.Degraded || !inst.Ready {
			fs.Degraded = append(fs.Degraded, inst.Target)
		}
		if inst.exp == nil {
			continue
		}
		for name, v := range inst.Counters {
			fs.Counters[name] += v
		}
		for name, f := range inst.exp.Families {
			if f.Type == "histogram" {
				merge.add(name, f)
			}
		}
	}
	for name, m := range merge.families {
		fs.Histograms[name] = m.merged()
	}
	sort.Strings(fs.Degraded)
	fs.VersionSkew = versionSkew(fs.Instances)
	return fs
}

// versionSkew groups reachable instances by shard and reports every shard
// whose members disagree on the live-table version. A replica set serving two
// table versions at once means a mutation reached some replicas and not
// others — responses depend on which replica the router picks. Instances
// predating live tables (version 0) are skipped rather than counted as skew.
func versionSkew(instances []InstanceStatus) []string {
	type group struct {
		versions map[uint64]bool
		min, max uint64
	}
	byShard := make(map[string]*group)
	for _, inst := range instances {
		if inst.Err != "" || inst.TableVersion == 0 {
			continue
		}
		g := byShard[inst.Shard]
		if g == nil {
			g = &group{versions: make(map[uint64]bool), min: inst.TableVersion, max: inst.TableVersion}
			byShard[inst.Shard] = g
		}
		g.versions[inst.TableVersion] = true
		if inst.TableVersion < g.min {
			g.min = inst.TableVersion
		}
		if inst.TableVersion > g.max {
			g.max = inst.TableVersion
		}
	}
	var skew []string
	for shard, g := range byShard {
		if len(g.versions) <= 1 {
			continue
		}
		name := shard
		if name == "" {
			name = "(unsharded)"
		}
		skew = append(skew, fmt.Sprintf("%s: v%d..v%d across %d versions", name, g.min, g.max, len(g.versions)))
	}
	sort.Strings(skew)
	return skew
}

// histMerger accumulates cumulative bucket counts per histogram family
// across instances. Buckets are keyed by le bound; summing cumulative
// counts of identical bounds keeps the merged CDF monotone.
type histMerger struct {
	families map[string]*histAcc
}

// histAcc is one family's accumulated state.
type histAcc struct {
	byLE      map[float64]float64
	count     float64
	sum       float64
	instances int
}

func newHistMerger() *histMerger {
	return &histMerger{families: make(map[string]*histAcc)}
}

// add folds one instance's family into the accumulator, collapsing label
// sets: thorctl's fleet view is per family, so per-label series (concepts,
// streams) of the same family merge together.
func (m *histMerger) add(name string, f *promtext.Family) {
	acc := m.families[name]
	if acc == nil {
		acc = &histAcc{byLE: make(map[float64]float64)}
		m.families[name] = acc
	}
	contributed := false
	for _, s := range f.Samples {
		switch s.Name {
		case name + "_bucket":
			le, err := parseLE(s.Label("le"))
			if err != nil {
				continue
			}
			acc.byLE[le] += s.Value
		case name + "_count":
			acc.count += s.Value
			if s.Value > 0 {
				contributed = true
			}
		case name + "_sum":
			acc.sum += s.Value
		}
	}
	if contributed {
		acc.instances++
	}
}

// parseLE parses a bucket bound, accepting the exposition infinities.
func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "":
		return 0, fmt.Errorf("missing le")
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

// merged folds the accumulated buckets into quantiles.
func (a *histAcc) merged() MergedHistogram {
	out := MergedHistogram{Count: a.count, Sum: a.sum, Instances: a.instances}
	if a.count == 0 {
		return out
	}
	les := make([]float64, 0, len(a.byLE))
	for le := range a.byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	cums := make([]float64, len(les))
	for i, le := range les {
		cums[i] = a.byLE[le]
	}
	// Cumulative counts from different instances' bucket layouts can be
	// jagged if layouts differ; enforce monotonicity before interpolating.
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			cums[i] = cums[i-1]
		}
	}
	total := cums[len(cums)-1]
	out.P50 = quantileFromBuckets(les, cums, total, 0.50)
	out.P90 = quantileFromBuckets(les, cums, total, 0.90)
	out.P99 = quantileFromBuckets(les, cums, total, 0.99)
	return out
}

// quantileFromBuckets interpolates the q-quantile from cumulative bucket
// counts, Prometheus histogram_quantile-style: linear within the bucket the
// rank falls into, with the +Inf bucket clamped to the last finite bound.
func quantileFromBuckets(les, cums []float64, total, q float64) float64 {
	if total == 0 || len(les) == 0 {
		return 0
	}
	rank := q * total
	for i, cum := range cums {
		if cum < rank {
			continue
		}
		lo, loCum := 0.0, 0.0
		if i > 0 {
			lo, loCum = les[i-1], cums[i-1]
		}
		hi := les[i]
		if math.IsInf(hi, +1) {
			// The rank lands in the overflow bucket: the best point estimate
			// is the largest finite bound.
			return lo
		}
		if cum == loCum {
			return hi
		}
		return lo + (hi-lo)*(rank-loCum)/(cum-loCum)
	}
	last := les[len(les)-1]
	if math.IsInf(last, +1) && len(les) > 1 {
		return les[len(les)-2]
	}
	return last
}
