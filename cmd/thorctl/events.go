package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"thor/internal/obs"
)

// eventsFragment is one node's answer to the -events fan-out.
type eventsFragment struct {
	// Target is the host:port the journal was fetched from.
	Target string
	// Export is the node's journal export; nil on fetch failure.
	Export *obs.JournalExport
	// Err is the fetch failure, if any.
	Err error
}

// fetchEvents fetches one node's /debug/events journal.
func fetchEvents(client *http.Client, target string) eventsFragment {
	frag := eventsFragment{Target: target}
	resp, err := client.Get("http://" + target + "/debug/events")
	if err != nil {
		frag.Err = err
		return frag
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		frag.Err = err
		return frag
	}
	if resp.StatusCode != http.StatusOK {
		frag.Err = fmt.Errorf("status %d", resp.StatusCode)
		return frag
	}
	var je obs.JournalExport
	if err := json.Unmarshal(body, &je); err != nil {
		frag.Err = fmt.Errorf("decode journal: %w", err)
		return frag
	}
	if je.Node == "" {
		je.Node = target
	}
	frag.Export = &je
	return frag
}

// FleetTimeline is the merged fleet event view: every node's journal
// flattened into one timeline ordered by wall clock (per-node sequence
// numbers break wall-clock ties within a process).
type FleetTimeline struct {
	// Events are the merged events, oldest first, each stamped with its node.
	Events []obs.JournalEvent `json:"events"`
	// Nodes lists the polled nodes, sorted.
	Nodes []string `json:"nodes"`
	// Dropped is the fleet-wide count of events lost to ring overwrites.
	Dropped uint64 `json:"dropped"`
	// Errors lists nodes that could not be polled ("target: error").
	Errors []string `json:"errors,omitempty"`
}

// mergeEvents flattens per-node journals into one timeline.
func mergeEvents(frags []eventsFragment) *FleetTimeline {
	tl := &FleetTimeline{}
	for _, f := range frags {
		if f.Err != nil {
			tl.Errors = append(tl.Errors, f.Target+": "+f.Err.Error())
			continue
		}
		tl.Nodes = append(tl.Nodes, f.Export.Node)
		tl.Dropped += f.Export.Dropped
		for _, ev := range f.Export.Events {
			ev.Node = f.Export.Node
			tl.Events = append(tl.Events, ev)
		}
	}
	sort.Slice(tl.Events, func(i, j int) bool {
		a, b := tl.Events[i], tl.Events[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	sort.Strings(tl.Nodes)
	sort.Strings(tl.Errors)
	return tl
}

// runEvents is the -events mode: fan out to every node, merge, render. Exit
// 0 when every node answered, 1 otherwise.
func runEvents(client *http.Client, stdout io.Writer, targets []string, asJSON bool) int {
	frags := make([]eventsFragment, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t string) {
			defer wg.Done()
			frags[i] = fetchEvents(client, t)
		}(i, t)
	}
	wg.Wait()
	tl := mergeEvents(frags)
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tl)
	} else {
		renderEvents(stdout, tl)
	}
	if len(tl.Errors) > 0 {
		return 1
	}
	return 0
}

// renderEvents prints the merged timeline, one event per line.
func renderEvents(w io.Writer, tl *FleetTimeline) {
	fmt.Fprintf(w, "fleet events — %d event(s) from %d node(s), %d overwritten\n",
		len(tl.Events), len(tl.Nodes), tl.Dropped)
	for _, e := range tl.Errors {
		fmt.Fprintf(w, "  unreachable: %s\n", e)
	}
	if len(tl.Events) == 0 {
		return
	}
	fmt.Fprintf(w, "%-15s %-22s %-10s %-24s %-20s %s\n",
		"TIME", "NODE", "KIND", "SUBJECT", "TRANSITION", "DETAIL")
	for _, e := range tl.Events {
		fmt.Fprintf(w, "%-15s %-22s %-10s %-24s %-20s %s\n",
			e.Time.Format("15:04:05.000"), e.Node, e.Kind,
			eventSubject(e), eventTransition(e), eventDetail(e))
	}
}

// eventSubject renders the subject column ("-" when empty).
func eventSubject(e obs.JournalEvent) string {
	if e.Subject == "" {
		return "-"
	}
	return e.Subject
}

// eventTransition renders the from→to column; table events show versions.
func eventTransition(e obs.JournalEvent) string {
	if e.Kind == obs.EventTableSwap {
		return fmt.Sprintf("v%d→v%d", e.Previous, e.Version)
	}
	if e.Version > 0 {
		return fmt.Sprintf("%s→%s v%d", e.From, e.To, e.Version)
	}
	if e.From == "" && e.To == "" {
		return "-"
	}
	return e.From + "→" + e.To
}

// eventDetail folds the free-form columns (detail, invalidated concepts, the
// triggering trace) into one trailing cell.
func eventDetail(e obs.JournalEvent) string {
	var parts []string
	if e.Detail != "" {
		parts = append(parts, e.Detail)
	}
	if len(e.Concepts) > 0 {
		parts = append(parts, "invalidated: "+strings.Join(e.Concepts, ","))
	}
	if e.TraceID != "" {
		parts = append(parts, "trace="+e.TraceID)
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "  ")
}
