package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thor/internal/obs"
)

// span builds a test SpanExport.
func span(id, parent, name, node string, start time.Time, attrs ...obs.Attr) obs.SpanExport {
	_ = node
	return obs.SpanExport{
		TraceID:       "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:        id,
		ParentID:      parent,
		Name:          name,
		Start:         start,
		DurationNanos: int64(time.Millisecond),
		Attrs:         attrs,
	}
}

func TestStitchTraceCrossProcess(t *testing.T) {
	t0 := time.Unix(1000, 0)
	routerFrag := traceFragment{
		Target: "r:8090",
		Export: &obs.TraceExport{
			Node:    "r:8090",
			TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
			Spans: []obs.SpanExport{
				span("aaaaaaaaaaaaaaaa", "", "router.fill", "r", t0),
				span("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "router.backend", "r", t0.Add(time.Millisecond),
					obs.String("backend", "b1:7071"), obs.String("role", "primary")),
				span("cccccccccccccccc", "aaaaaaaaaaaaaaaa", "router.backend", "r", t0.Add(2*time.Millisecond),
					obs.String("backend", "b2:7072"), obs.String("role", "hedge")),
			},
		},
	}
	backendFrag := traceFragment{
		Target: "b1:7071",
		Export: &obs.TraceExport{
			Node:    "b1:7071",
			TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
			Spans: []obs.SpanExport{
				// The backend's root parents under the router's client span —
				// the cross-process edge stitching exists for.
				span("dddddddddddddddd", "bbbbbbbbbbbbbbbb", "http.fill", "b1", t0.Add(time.Millisecond+100*time.Microsecond)),
			},
		},
	}
	st := stitchTrace("4BF92F3577B34DA6A3CE929D0E0E4736", []traceFragment{routerFrag, backendFrag})
	if st.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not lowercased: %q", st.TraceID)
	}
	if st.SpanCount != 4 || len(st.Nodes) != 2 {
		t.Fatalf("spans=%d nodes=%v", st.SpanCount, st.Nodes)
	}
	if len(st.Roots) != 1 || st.Roots[0].Name != "router.fill" {
		t.Fatalf("want one root router.fill, got %+v", st.Roots)
	}
	root := st.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (primary + hedge)", len(root.Children))
	}
	// Children sorted by start: primary first, hedge second.
	primary, hedge := root.Children[0], root.Children[1]
	if primary.SpanID != "bbbbbbbbbbbbbbbb" || hedge.SpanID != "cccccccccccccccc" {
		t.Fatalf("children misordered: %s, %s", primary.SpanID, hedge.SpanID)
	}
	// The backend's server-side span hangs under the router's client span.
	if len(primary.Children) != 1 || primary.Children[0].Node != "b1:7071" {
		t.Fatalf("cross-process child not stitched: %+v", primary.Children)
	}
	if primary.Children[0].Name != "http.fill" {
		t.Fatalf("stitched child = %q", primary.Children[0].Name)
	}
}

func TestStitchTraceOrphansAndErrors(t *testing.T) {
	t0 := time.Unix(1000, 0)
	frags := []traceFragment{
		{Target: "a", Export: &obs.TraceExport{Node: "a", Spans: []obs.SpanExport{
			span("1111111111111111", "feedfacefeedface", "orphan", "a", t0), // parent retained nowhere
		}}},
		{Target: "down", Err: errFake("connection refused")},
		{Target: "empty"}, // clean 404: no fragment
	}
	st := stitchTrace("4bf92f3577b34da6a3ce929d0e0e4736", frags)
	if len(st.Roots) != 1 || st.Roots[0].Name != "orphan" {
		t.Fatalf("orphan should surface as a root: %+v", st.Roots)
	}
	if len(st.Errors) != 1 || !strings.Contains(st.Errors[0], "down") {
		t.Fatalf("errors = %v", st.Errors)
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }

func TestRunTraceFansOutAndStitches(t *testing.T) {
	t0 := time.Unix(1000, 0)
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	router := httptest.NewServer(exportHandler(t, id, &obs.TraceExport{
		Node: "router", TraceID: id, Spans: []obs.SpanExport{
			span("aaaaaaaaaaaaaaaa", "", "router.fill", "router", t0),
			span("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "router.backend", "router", t0.Add(time.Millisecond)),
		},
	}))
	defer router.Close()
	backend := httptest.NewServer(exportHandler(t, id, &obs.TraceExport{
		Node: "backend", TraceID: id, Spans: []obs.SpanExport{
			span("dddddddddddddddd", "bbbbbbbbbbbbbbbb", "http.fill", "backend", t0.Add(2*time.Millisecond)),
		},
	}))
	defer backend.Close()
	stranger := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"not_found"}}`, http.StatusNotFound)
	}))
	defer stranger.Close()

	targets := []string{
		strings.TrimPrefix(router.URL, "http://"),
		strings.TrimPrefix(backend.URL, "http://"),
		strings.TrimPrefix(stranger.URL, "http://"),
	}
	var stdout, stderr bytes.Buffer
	code := runTrace(http.DefaultClient, &stdout, &stderr, id, targets, true)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	var st StitchedTrace
	if err := json.Unmarshal(stdout.Bytes(), &st); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if st.SpanCount != 3 || len(st.Nodes) != 2 || len(st.Roots) != 1 {
		t.Fatalf("stitched wrong: %+v", st)
	}

	// Text render mentions every node and draws the tree.
	stdout.Reset()
	if code := runTrace(http.DefaultClient, &stdout, &stderr, id, targets, false); code != 0 {
		t.Fatalf("text mode exit = %d", code)
	}
	out := stdout.String()
	for _, want := range []string{"router.fill", "http.fill", "[router]", "[backend]", "└─"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// A trace nobody retains exits 1.
	stdout.Reset()
	if code := runTrace(http.DefaultClient, &stdout, &stderr, strings.Repeat("0", 32), targets, true); code != 1 {
		t.Fatalf("unknown trace should exit 1, got %d", code)
	}
}

// exportHandler serves the given export at /debug/traces/{id}?format=export
// and 404 otherwise.
func exportHandler(t *testing.T, id string, te *obs.TraceExport) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/traces/"+id || r.URL.Query().Get("format") != "export" {
			http.Error(w, `{"error":{"code":"not_found"}}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(te); err != nil {
			t.Errorf("encode: %v", err)
		}
	})
}
