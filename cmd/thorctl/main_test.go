package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thor/internal/embed"
	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/serve"
)

// startInstance boots one in-process serving engine over the shared fixture
// and returns its host:port plus the engine's SLO (so tests can degrade it).
func startInstance(t *testing.T) (string, *obs.SLO) {
	t.Helper()
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	table.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	table.AddRow("Malaria")
	space := embed.NewSpace()
	for _, w := range []string{"nervous", "system", "brain", "nerve"} {
		space.Add(w, embed.Blend(embed.HashVector("ex:anatomy"), embed.HashVector("ex-noise:"+w), 0.6))
	}
	slo := obs.NewSLO(obs.SLOConfig{Latency: 50 * time.Millisecond, MinSamples: 5})
	s, err := serve.NewServer(serve.Options{
		Table: table, Space: space, Tau: 0.6, Workers: 2,
		Metrics: obs.NewRegistry(), SLO: slo,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://"), slo
}

// TestFleetAggregation polls two live serving instances — one driven
// degraded — and checks the merged fleet view: the degraded instance is
// surfaced, merged histogram quantiles are monotone, and counters sum
// across instances.
func TestFleetAggregation(t *testing.T) {
	healthyAddr, _ := startInstance(t)
	degradedAddr, degradedSLO := startInstance(t)

	client := &http.Client{Timeout: 5 * time.Second}
	fill := func(addr string) {
		resp, err := client.Post("http://"+addr+"/v1/fill", "application/json",
			strings.NewReader(`{"documents":[{"name":"d","default_subject":"Malaria","text":"Malaria damages the nervous system."}]}`))
		if err != nil {
			t.Fatalf("fill %s: %v", addr, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fill %s: status %d", addr, resp.StatusCode)
		}
	}
	fill(healthyAddr)
	fill(degradedAddr)
	// Burn the second instance's error budget directly: every judged
	// observation errored, well past MinSamples.
	for i := 0; i < 20; i++ {
		degradedSLO.Observe("fill", 100*time.Millisecond, true)
	}

	st := poll(client, []string{healthyAddr, degradedAddr}, time.Unix(1754000000, 0))

	if len(st.Instances) != 2 {
		t.Fatalf("polled %d instances, want 2", len(st.Instances))
	}
	for _, inst := range st.Instances {
		if inst.Err != "" {
			t.Fatalf("instance %s unreachable: %s", inst.Target, inst.Err)
		}
		if inst.Goroutines <= 0 || inst.HeapBytes <= 0 {
			t.Errorf("instance %s runtime gauges not scraped: %+v", inst.Target, inst)
		}
	}

	// The degraded instance — and only it — is surfaced.
	if len(st.Degraded) != 1 || st.Degraded[0] != degradedAddr {
		t.Fatalf("degraded = %v, want exactly [%s]", st.Degraded, degradedAddr)
	}

	// Counters sum across the fleet: one fill request per instance.
	if got := st.Counters["serve_fill_requests"]; got != 2 {
		t.Errorf("fleet serve_fill_requests = %v, want 2", got)
	}

	// Merged histogram quantiles are monotone and populated for the
	// request-latency family both instances observed.
	h, ok := st.Histograms["serve_http_fill_seconds"]
	if !ok {
		t.Fatalf("serve_http_fill_seconds not merged: %v", st.Histograms)
	}
	if h.Count < 2 {
		t.Errorf("merged count = %v, want >= 2", h.Count)
	}
	if h.Instances != 2 {
		t.Errorf("contributing instances = %d, want 2", h.Instances)
	}
	if !(h.P50 <= h.P90 && h.P90 <= h.P99) {
		t.Errorf("merged quantiles not monotone: p50=%v p90=%v p99=%v", h.P50, h.P90, h.P99)
	}
	if h.P99 <= 0 {
		t.Errorf("merged p99 = %v, want > 0", h.P99)
	}
	for name, m := range st.Histograms {
		if !(m.P50 <= m.P90 && m.P90 <= m.P99) {
			t.Errorf("family %s quantiles not monotone: %+v", name, m)
		}
	}

	// The one-shot exit path flags the degradation.
	var out, errb strings.Builder
	code := run([]string{"-targets", healthyAddr + "," + degradedAddr}, &out, &errb)
	if code != 1 {
		t.Errorf("one-shot exit = %d with a degraded instance, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), degradedAddr) || !strings.Contains(out.String(), "true") {
		t.Errorf("status table does not surface the degraded instance:\n%s", out.String())
	}

	// -json mode emits parseable FleetStatus.
	out.Reset()
	code = run([]string{"-targets", healthyAddr, "-json"}, &out, &errb)
	if code != 0 {
		t.Errorf("healthy one-shot exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"instances"`) {
		t.Errorf("-json output unexpected:\n%s", out.String())
	}
}

// startVersionedInstance boots a serving engine at a fixed live-table
// version, optionally sharded.
func startVersionedInstance(t *testing.T, version uint64, shard string) string {
	t.Helper()
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy"))
	table.AddRow("Malaria")
	s, err := serve.NewServer(serve.Options{
		Table: table, Space: embed.NewSpace(), Tau: 0.6, Workers: 1,
		Metrics: obs.NewRegistry(), TableVersion: version, ShardID: shard,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestTableVersionSkew drives the live-table version check: replicas of one
// shard serving different table versions are flagged (and fail the one-shot
// exit code), while matching replicas — and skew across *different* shards —
// stay green.
func TestTableVersionSkew(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}

	// Same shard, same version: clean.
	a1 := startVersionedInstance(t, 4, "shard-a")
	a2 := startVersionedInstance(t, 4, "shard-a")
	st := poll(client, []string{a1, a2}, time.Unix(1754000000, 0))
	if len(st.VersionSkew) != 0 {
		t.Fatalf("matching replicas flagged: %v", st.VersionSkew)
	}
	for _, inst := range st.Instances {
		if inst.TableVersion != 4 || inst.Shard != "shard-a" {
			t.Fatalf("instance scrape: version %d shard %q, want 4/shard-a", inst.TableVersion, inst.Shard)
		}
	}

	// Different shards may run different versions (a rollout mutates one
	// domain partition at a time): still clean.
	b1 := startVersionedInstance(t, 9, "shard-b")
	st = poll(client, []string{a1, a2, b1}, time.Unix(1754000000, 0))
	if len(st.VersionSkew) != 0 {
		t.Fatalf("cross-shard version difference flagged: %v", st.VersionSkew)
	}

	// Skew inside one shard: flagged, rendered, and the one-shot exit is 1.
	a3 := startVersionedInstance(t, 5, "shard-a")
	st = poll(client, []string{a1, a2, a3}, time.Unix(1754000000, 0))
	if len(st.VersionSkew) != 1 || !strings.Contains(st.VersionSkew[0], "shard-a") {
		t.Fatalf("skew = %v, want exactly shard-a", st.VersionSkew)
	}
	var out, errb strings.Builder
	code := run([]string{"-targets", a1 + "," + a2 + "," + a3}, &out, &errb)
	if code != 1 {
		t.Errorf("one-shot exit = %d with version skew, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "TABLE VERSION SKEW") || !strings.Contains(out.String(), "shard-a") {
		t.Errorf("status table does not surface the skew:\n%s", out.String())
	}

	// Unsharded instances are compared as one group.
	u1 := startVersionedInstance(t, 2, "")
	u2 := startVersionedInstance(t, 3, "")
	st = poll(client, []string{u1, u2}, time.Unix(1754000000, 0))
	if len(st.VersionSkew) != 1 || !strings.Contains(st.VersionSkew[0], "(unsharded)") {
		t.Fatalf("unsharded skew = %v, want one (unsharded) entry", st.VersionSkew)
	}
}

// TestQuantileFromBuckets pins the interpolation: a known CDF yields
// monotone, in-range quantiles.
func TestQuantileFromBuckets(t *testing.T) {
	les := []float64{0.001, 0.01, 0.1, math.Inf(1)}
	cums := []float64{10, 60, 90, 100}
	var prev float64
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := quantileFromBuckets(les, cums, 100, q)
		if v < prev {
			t.Fatalf("quantile %v = %v < previous %v (not monotone)", q, v, prev)
		}
		prev = v
	}
	// q=0.99 lands in the +Inf bucket: clamped to the last finite bound.
	if v := quantileFromBuckets(les, cums, 100, 0.99); v != 0.1 {
		t.Errorf("overflow quantile = %v, want clamp to 0.1", v)
	}
}
