package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"thor/internal/datagen"
)

func main() {
	var (
		name = flag.String("dataset", "disease", "dataset to generate: disease or resume")
		out  = flag.String("out", "data", "output directory")
		seed = flag.Int64("seed", 0, "generation seed (0 = the dataset's default)")
	)
	flag.Parse()

	var ds *datagen.Dataset
	switch *name {
	case "disease":
		s := *seed
		if s == 0 {
			s = datagen.DiseaseSeed
		}
		ds = datagen.Disease(s)
	case "resume":
		s := *seed
		if s == 0 {
			s = datagen.ResumeSeed
		}
		ds = datagen.Resume(s)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}

	if err := datagen.Validate(ds); err != nil {
		fatal(err)
	}
	root := filepath.Join(*out, ds.Name)
	if err := write(ds, root); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: table %s\n", root, ds.Table)
	for _, s := range []struct {
		name  string
		split *datagen.Split
	}{{"train", &ds.Train}, {"valid", &ds.Valid}, {"test", &ds.Test}} {
		fmt.Printf("  %-5s %s\n", s.name, datagen.SplitStats(s.split))
	}
}

func write(ds *datagen.Dataset, root string) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	// Structured table.
	tj, err := os.Create(filepath.Join(root, "table.json"))
	if err != nil {
		return err
	}
	defer tj.Close()
	if err := ds.Table.WriteJSON(tj); err != nil {
		return err
	}
	tc, err := os.Create(filepath.Join(root, "table.csv"))
	if err != nil {
		return err
	}
	defer tc.Close()
	if err := ds.Table.WriteCSV(tc); err != nil {
		return err
	}
	// The embedding space, so cmd/thor runs reproduce the experiments.
	vf, err := os.Create(filepath.Join(root, "vectors.bin"))
	if err != nil {
		return err
	}
	defer vf.Close()
	if _, err := ds.Space.WriteTo(vf); err != nil {
		return err
	}
	// Splits.
	for _, s := range []struct {
		name  string
		split *datagen.Split
	}{{"train", &ds.Train}, {"valid", &ds.Valid}, {"test", &ds.Test}} {
		dir := filepath.Join(root, s.name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, d := range s.split.Docs {
			if err := os.WriteFile(filepath.Join(dir, d.Name+".txt"), []byte(d.Text), 0o644); err != nil {
				return err
			}
		}
		gf, err := os.Create(filepath.Join(dir, "gold.json"))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(gf)
		enc.SetIndent("", "  ")
		err = enc.Encode(s.split.Gold)
		gf.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
