// Command datagen materializes the synthetic evaluation datasets to disk:
// the structured table (JSON + CSV), the documents of each split as .txt
// files, and the gold annotations as JSON.
//
// Usage:
//
//	datagen -dataset disease -out ./data        # Disease A-Z
//	datagen -dataset resume  -out ./data        # Résumé
//	datagen -dataset disease -seed 42 -out ./d  # alternative seed
package main
