package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime/trace"
	"time"

	"thor/internal/chaos"
	"thor/internal/datagen"
	"thor/internal/experiments"
	"thor/internal/obs"
)

// logger carries the structured diagnostics every thorbench mode writes to
// stderr (results themselves go to stdout); configured by -log-format and
// -log-level in main.
var logger *slog.Logger

func main() {
	exp := flag.Int("exp", 0, "experiment to run (1, 2 or 3; 0 = all)")
	csvDir := flag.String("csv", "", "optional directory for CSV series of every table/figure")
	metricsAddr := flag.String("metrics-addr", "", "serve /debug/vars, /debug/pprof/* and /debug/thor/* on this address")
	metricsJSON := flag.String("metrics-json", "", "write the final metrics snapshot (counters + stage histograms) to this file")
	traceOut := flag.String("trace-out", "", "write a runtime execution trace to this file")

	chaosMode := flag.Bool("chaos", false, "run the chaos fault-injection suite instead of the experiments")
	chaosSeed := flag.Uint64("chaos-seed", 42, "fault-injection seed (replays the exact schedule)")
	chaosErrRate := flag.Float64("chaos-error-rate", 0.03, "per-site injected error probability")
	chaosPanicRate := flag.Float64("chaos-panic-rate", 0.01, "per-site injected panic probability")

	serveMode := flag.Bool("serve", false, "benchmark the online serving path (internal/serve) instead of the experiments")
	serveOut := flag.String("serve-out", "BENCH_SERVE_BASELINE.json", "where -serve writes the baseline document")
	serveDuration := flag.Duration("serve-duration", 3*time.Second, "measured wall clock per -serve/-router concurrency level")
	serveLevels := flag.String("serve-levels", "1,8,64", "comma-separated closed-loop client counts for -serve/-router")

	routerMode := flag.Bool("router", false, "benchmark the sharded tier: spawn thord backends + thor-router as processes and drive load through the router")
	routerOut := flag.String("router-out", "BENCH_ROUTER_BASELINE.json", "where -router writes the baseline document")
	routerBackends := flag.Int("router-backends", 3, "number of thord backend processes behind the router")
	routerBaselineIn := flag.String("router-baseline", "BENCH_SERVE_BASELINE.json", "single-node serving baseline to compare -router throughput against")
	thordBin := flag.String("thord-bin", "", "path to a prebuilt thord binary (default: go build ./cmd/thord into a temp dir)")
	routerBin := flag.String("router-bin", "", "path to a prebuilt thor-router binary (default: go build ./cmd/thor-router into a temp dir)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thorbench:", err)
		os.Exit(2)
	}
	if logger, err = obs.NewLogger(os.Stderr, *logFormat, level); err != nil {
		fmt.Fprintln(os.Stderr, "thorbench:", err)
		os.Exit(2)
	}

	if *chaosMode {
		runChaos(*chaosSeed, *chaosErrRate, *chaosPanicRate)
		return
	}
	if *serveMode {
		runServe(*serveOut, *serveDuration, *serveLevels)
		return
	}
	if *routerMode {
		runRouter(*routerOut, *routerBaselineIn, *serveDuration, *serveLevels, *routerBackends, *thordBin, *routerBin)
		return
	}

	// The registry and tracer are threaded through every pipeline run the
	// experiments perform; the span capacity covers a full 3-experiment
	// regeneration.
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16384)
	experiments.SetInstruments(reg, tr)

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg, tr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logger.Info("debug server up", "url", "http://"+srv.Addr+"/debug/vars")
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}

	if *csvDir != "" {
		if err := experiments.WriteCSVSeries(*csvDir,
			experiments.DiseaseComparison(),
			experiments.ResumeComparison(),
			experiments.Annotation(),
		); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV series written to %s\n", *csvDir)
	}

	switch *exp {
	case 0:
		runExp1()
		runExp2()
		runExp3()
	case 1:
		runExp1()
	case 2:
		runExp2()
	case 3:
		runExp3()
	default:
		fmt.Fprintf(os.Stderr, "thorbench: unknown experiment %d\n", *exp)
		os.Exit(2)
	}

	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fatal(err)
		}
		err = reg.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		logger.Info("metrics snapshot written", "path", *metricsJSON)
	}
}

// runChaos drives both synthetic datasets through the pipeline under fault
// injection and exits non-zero if any quarantined document perturbed the
// results of the healthy ones.
func runChaos(seed uint64, errRate, panicRate float64) {
	if errRate < 0 || errRate > 1 || panicRate < 0 || panicRate > 1 {
		fmt.Fprintln(os.Stderr, "thorbench: chaos rates must be in [0,1]")
		os.Exit(2)
	}
	cfg := chaos.Config{
		Seed:              seed,
		ErrorRate:         errRate,
		TransientFraction: 0.5,
		PanicRate:         panicRate,
		LatencyRate:       0.02,
		TruncateRate:      0.05,
		CorruptRate:       0.05,
	}
	violated := false
	for _, ds := range []*datagen.Dataset{experiments.DiseaseDataset(), experiments.ResumeDataset()} {
		rep := experiments.RunChaos(ds, cfg)
		fmt.Println(rep)
		if !rep.HealthyIdentical {
			violated = true
		}
	}
	if violated {
		fmt.Fprintln(os.Stderr, "thorbench: fault isolation violated; re-run with -chaos-seed", seed, "to replay")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thorbench:", err)
	os.Exit(1)
}
