// Command thorbench regenerates every table and figure of the paper's
// evaluation section from the synthetic datasets.
//
// Usage:
//
//	thorbench               # all experiments
//	thorbench -exp 1        # Experiment 1 only (Tables V–VIII, Figs 5–7)
//	thorbench -exp 2        # Experiment 2 only (Tables IX–X, Fig 8)
//	thorbench -exp 3        # Experiment 3 only (Table XI, Figs 9–10)
package main

import (
	"flag"
	"fmt"
	"os"

	"thor/internal/experiments"
)

func main() {
	exp := flag.Int("exp", 0, "experiment to run (1, 2 or 3; 0 = all)")
	csvDir := flag.String("csv", "", "optional directory for CSV series of every table/figure")
	flag.Parse()

	if *csvDir != "" {
		if err := experiments.WriteCSVSeries(*csvDir,
			experiments.DiseaseComparison(),
			experiments.ResumeComparison(),
			experiments.Annotation(),
		); err != nil {
			fmt.Fprintln(os.Stderr, "thorbench:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV series written to %s\n", *csvDir)
	}

	switch *exp {
	case 0:
		runExp1()
		runExp2()
		runExp3()
	case 1:
		runExp1()
	case 2:
		runExp2()
	case 3:
		runExp3()
	default:
		fmt.Fprintf(os.Stderr, "thorbench: unknown experiment %d\n", *exp)
		os.Exit(2)
	}
}
