package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thor/internal/chaos"
	"thor/internal/experiments"
	"thor/internal/serve"
)

// serveLevel is one concurrency level's measurement in the serving baseline.
type serveLevel struct {
	// Concurrency is the closed-loop client count.
	Concurrency int `json:"concurrency"`
	// Requests is the number of completed (2xx) requests.
	Requests int64 `json:"requests"`
	// Retries counts 503 shed responses that were retried.
	Retries int64 `json:"retries"`
	// Errors counts requests that failed after retries.
	Errors int64 `json:"errors"`
	// ThroughputRPS is completed requests per second of wall clock.
	ThroughputRPS float64 `json:"throughput_rps"`
	// LatencyMS are end-to-end request latency percentiles in milliseconds.
	LatencyMS map[string]float64 `json:"latency_ms"`
	// Entities and Filled sum the per-request result counters, a sanity
	// check that the load was real slot-filling work.
	Entities int64 `json:"entities"`
	// Filled counts slots written across all completed requests.
	Filled int64 `json:"filled"`
	// AllocsPerRequest is the process-wide heap allocation count delta
	// divided by completed requests — the serving path's steady-state
	// allocation cost. In-process bench clients contribute too, so the
	// value is an upper bound on the server's own share; it is comparable
	// run to run because the client shape is fixed.
	AllocsPerRequest float64 `json:"allocs_per_request"`
	// Runtime are the Go runtime deltas measured across the level.
	Runtime serveRuntime `json:"runtime"`
}

// serveRuntime captures runtime/metrics deltas across one concurrency level,
// so the baseline records the memory cost of a load shape alongside its
// latency (a throughput win that doubles GC pressure is not a win).
type serveRuntime struct {
	// GCCycles is the number of GC cycles completed during the level.
	GCCycles uint64 `json:"gc_cycles"`
	// AllocBytes is the total heap allocation during the level.
	AllocBytes uint64 `json:"alloc_bytes"`
	// AllocObjects is the total number of heap objects allocated during the
	// level (the numerator of AllocsPerRequest).
	AllocObjects uint64 `json:"alloc_objects"`
	// PeakHeapBytes is the largest live-heap sample observed during the
	// level (polled, so it reflects mid-level pressure, not the post-GC
	// endpoints).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// serveBaseline is the BENCH_SERVE_BASELINE.json document.
type serveBaseline struct {
	// Benchmark identifies the workload shape.
	Benchmark string `json:"benchmark"`
	// Dataset names the corpus driven through the server.
	Dataset string `json:"dataset"`
	// DocsPerRequest is the fixed request size.
	DocsPerRequest int `json:"docs_per_request"`
	// DurationS is the measured wall clock per level, in seconds.
	DurationS float64 `json:"duration_s"`
	// BatchMax and BatchWindowMS echo the server's coalescing knobs.
	BatchMax int `json:"batch_max"`
	// BatchWindowMS is the coalescing window in milliseconds.
	BatchWindowMS float64 `json:"batch_window_ms"`
	// Levels are the per-concurrency measurements.
	Levels []serveLevel `json:"levels"`
}

// runServe benchmarks the online serving path end to end: it starts an
// in-process internal/serve engine over the Disease dataset, drives it with
// closed-loop HTTP clients at each concurrency level, and writes throughput
// plus latency percentiles to outPath. Shed responses (503) are retried with
// chaos.Retry's jittered backoff, as a well-behaved client would.
func runServe(outPath string, duration time.Duration, levelsCSV string) {
	levels, err := parseLevels(levelsCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thorbench:", err)
		os.Exit(2)
	}
	ds := experiments.DiseaseDataset()
	const batchMax = 16
	const batchWindow = 2 * time.Millisecond
	engine, err := serve.NewServer(serve.Options{
		Table: ds.TestTable(),
		// The full structured table is the fine-tuning knowledge, exactly as
		// the offline experiments run (the cleared test table alone would
		// only seed subject-concept matches).
		Knowledge:   ds.Table,
		Space:       ds.Space,
		Tau:         experiments.BestTau,
		Lexicon:     ds.Lexicon,
		BatchMax:    batchMax,
		BatchWindow: batchWindow,
		QueueDepth:  128,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: engine}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		engine.Close()
	}()
	url := "http://" + ln.Addr().String() + "/v1/fill"

	// Pre-encode one single-document request body per test document so the
	// clients measure serving, not client-side encoding.
	bodies := make([][]byte, len(ds.Test.Docs))
	for i, d := range ds.Test.Docs {
		b, err := json.Marshal(serve.Request{Documents: []serve.Document{{
			Name: d.Name, DefaultSubject: d.DefaultSubject, Text: d.Text,
		}}})
		if err != nil {
			fatal(err)
		}
		bodies[i] = b
	}

	header("Serving benchmark — closed-loop load against thord's engine (Disease A-Z)")
	fmt.Printf("docs: %d  batch-max: %d  window: %v  duration/level: %v\n\n",
		len(bodies), batchMax, batchWindow, duration)
	base := serveBaseline{
		Benchmark:      "serve-closed-loop",
		Dataset:        "disease",
		DocsPerRequest: 1,
		DurationS:      duration.Seconds(),
		BatchMax:       batchMax,
		BatchWindowMS:  float64(batchWindow) / float64(time.Millisecond),
	}
	for _, c := range levels {
		sampler := startRuntimeSampler()
		lv := driveLevel(url, bodies, c, duration)
		lv.Runtime = sampler.finish()
		if lv.Requests > 0 {
			lv.AllocsPerRequest = float64(lv.Runtime.AllocObjects) / float64(lv.Requests)
		}
		base.Levels = append(base.Levels, lv)
		fmt.Printf("c=%-3d  %8.1f req/s   p50 %7.2fms  p95 %7.2fms  p99 %7.2fms   retries %d  errors %d   gc %d  peak-heap %.1fMiB  allocs/req %.0f\n",
			lv.Concurrency, lv.ThroughputRPS,
			lv.LatencyMS["p50"], lv.LatencyMS["p95"], lv.LatencyMS["p99"],
			lv.Retries, lv.Errors,
			lv.Runtime.GCCycles, float64(lv.Runtime.PeakHeapBytes)/(1<<20),
			lv.AllocsPerRequest)
	}
	f, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(base)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	logger.Info("serving baseline written", "path", outPath)
}

// Runtime metric names sampled per level; all four are KindUint64 and have
// been stable since go1.16.
const (
	gcCyclesMetric   = "/gc/cycles/total:gc-cycles"
	allocBytesMetric = "/gc/heap/allocs:bytes"
	allocObjsMetric  = "/gc/heap/allocs:objects"
	liveHeapMetric   = "/memory/classes/heap/objects:bytes"
)

// readRuntime samples the four level metrics in one runtime/metrics read.
func readRuntime() (gcCycles, allocBytes, allocObjs, liveHeap uint64) {
	s := []metrics.Sample{
		{Name: gcCyclesMetric}, {Name: allocBytesMetric},
		{Name: allocObjsMetric}, {Name: liveHeapMetric},
	}
	metrics.Read(s)
	read := func(v metrics.Value) uint64 {
		if v.Kind() == metrics.KindUint64 {
			return v.Uint64()
		}
		return 0
	}
	return read(s[0].Value), read(s[1].Value), read(s[2].Value), read(s[3].Value)
}

// runtimeSampler measures GC-cycle and allocation deltas across one level and
// polls the live heap so the recorded peak catches mid-level pressure.
type runtimeSampler struct {
	startGC    uint64
	startAlloc uint64
	startObjs  uint64
	peak       uint64
	stop       chan struct{}
	done       chan struct{}
}

// startRuntimeSampler snapshots the counters and begins polling the heap.
func startRuntimeSampler() *runtimeSampler {
	gc, alloc, objs, live := readRuntime()
	rs := &runtimeSampler{
		startGC:    gc,
		startAlloc: alloc,
		startObjs:  objs,
		peak:       live,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go func() {
		defer close(rs.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-rs.stop:
				return
			case <-tick.C:
				if _, _, _, live := readRuntime(); live > rs.peak {
					rs.peak = live
				}
			}
		}
	}()
	return rs
}

// finish stops the poller and returns the level's deltas.
func (rs *runtimeSampler) finish() serveRuntime {
	close(rs.stop)
	<-rs.done
	gc, alloc, objs, live := readRuntime()
	if live > rs.peak {
		rs.peak = live
	}
	return serveRuntime{
		GCCycles:      gc - rs.startGC,
		AllocBytes:    alloc - rs.startAlloc,
		AllocObjects:  objs - rs.startObjs,
		PeakHeapBytes: rs.peak,
	}
}

// driveLevel runs one closed-loop level: c clients, each issuing its next
// request the moment the previous one completes, for the given duration.
func driveLevel(url string, bodies [][]byte, c int, duration time.Duration) serveLevel {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: c}}
	defer client.CloseIdleConnections()
	var (
		next     atomic.Int64 // round-robin document cursor
		requests atomic.Int64
		retries  atomic.Int64
		errs     atomic.Int64
		entities atomic.Int64
		filled   atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			backoff := chaos.Backoff{Attempts: 5, Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, Seed: uint64(w),
				Hint: chaos.RetryAfterHint}
			for ctx.Err() == nil {
				body := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				var resp serve.Response
				err := chaos.Retry(ctx, backoff, "bench", func(attempt int) error {
					if attempt > 0 {
						retries.Add(1)
					}
					return postOnce(ctx, client, url, body, &resp)
				})
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				requests.Add(1)
				entities.Add(int64(resp.Stats.Entities))
				filled.Add(int64(resp.Stats.Filled))
				d := time.Since(t0)
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return serveLevel{
		Concurrency:   c,
		Requests:      requests.Load(),
		Retries:       retries.Load(),
		Errors:        errs.Load(),
		ThroughputRPS: float64(requests.Load()) / elapsed.Seconds(),
		LatencyMS:     percentiles(lats),
		Entities:      entities.Load(),
		Filled:        filled.Load(),
	}
}

// postOnce issues one fill request. A 503 (shed or draining) comes back as a
// transient error so chaos.Retry backs off and tries again; any other
// non-200 is permanent.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte, out *serve.Response) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case resp.StatusCode == http.StatusServiceUnavailable:
		err := chaos.MarkTransient(fmt.Errorf("server overloaded (503)"))
		// Honor the server's own backoff advice when present: the shed
		// response carries a jittered Retry-After that spreads the retry
		// herd better than our blind exponential.
		if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			err = chaos.WithRetryAfter(err, ra)
		}
		return err
	default:
		return fmt.Errorf("unexpected status %d", resp.StatusCode)
	}
}

// parseRetryAfter parses a delay-seconds Retry-After header value (the only
// form thord emits). Returns 0 for absent or unparseable values.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// percentiles summarizes latencies as milliseconds.
func percentiles(lats []time.Duration) map[string]float64 {
	if len(lats) == 0 {
		return map[string]float64{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return map[string]float64{
		"p50":  at(0.50),
		"p90":  at(0.90),
		"p95":  at(0.95),
		"p99":  at(0.99),
		"max":  float64(lats[len(lats)-1]) / float64(time.Millisecond),
		"mean": float64(sum) / float64(len(lats)) / float64(time.Millisecond),
	}
}

// parseLevels parses the -serve-levels CSV ("1,8,64") into concurrencies.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -serve-levels %q: each level must be a positive integer", s)
		}
		out = append(out, n)
	}
	return out, nil
}
