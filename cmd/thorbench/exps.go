package main

import (
	"fmt"
	"os"

	"thor/internal/datagen"
	"thor/internal/eval"
	"thor/internal/experiments"
)

func header(title string) {
	fmt.Println()
	fmt.Println("==============================================================")
	fmt.Println(title)
	fmt.Println("==============================================================")
}

func runExp1() {
	header("Experiment 1 — comparison against the state of the art (Disease A-Z)")
	ds := experiments.DiseaseDataset()
	fmt.Println("structured table:", ds.Table)
	fmt.Println("test split      :", datagen.SplitStats(&ds.Test))
	c := experiments.DiseaseComparison()
	fmt.Println()
	experiments.RenderTableV(os.Stdout, c)
	fmt.Println()
	experiments.RenderFig5(os.Stdout, c)
	fmt.Println()
	experiments.RenderFig6(os.Stdout, c)
	fmt.Println()
	experiments.RenderTableVI(os.Stdout, c)
	fmt.Println()
	experiments.RenderFig7(os.Stdout, c)
	fmt.Println()
	experiments.RenderTableVII(os.Stdout, c)
	fmt.Println()
	experiments.RenderTableVIII(os.Stdout, c)
	fmt.Println()
	experiments.RenderStageCosts(os.Stdout, c)

	// The held-out validation split selects τ without touching the test set.
	if tuned, err := experiments.TuneTau(ds, experiments.TuneF1); err == nil {
		fmt.Printf("\nvalidation-tuned tau = %.1f (valid F1 %.2f, test F1 %.2f)\n",
			tuned.Tau, tuned.ValidScore, c.ThorAt(tuned.Tau).Report.Overall.F1())
	}

	// Subject-level bootstrap confidence intervals for the headline rows
	// (the paper reports point estimates only).
	for _, row := range []*experiments.SystemResult{
		c.ThorAt(experiments.BestTau), c.Other("LM-Human"),
	} {
		bs := eval.Bootstrap(row.Predictions, ds.Test.Gold, 500, 0.05, 1)
		fmt.Printf("%s F1 %.2f (95%% CI %.2f-%.2f over %d resamples)\n",
			row.Name, bs.F1.Point, bs.F1.Low, bs.F1.High, bs.Resamples)
	}
}

func runExp2() {
	header("Experiment 2 — manual vs automatic annotation (Disease A-Z)")
	s := experiments.Annotation()
	experiments.RenderTableIX(os.Stdout, s)
	fmt.Println()
	experiments.RenderTableX(os.Stdout, s)
	fmt.Println()
	experiments.RenderFig8(os.Stdout, s)
	fmt.Println()
	experiments.RenderStageTable(os.Stdout, "annotation-study THOR reference", s.ThorStats)
}

func runExp3() {
	header("Experiment 3 — generalizability (Résumé)")
	ds := experiments.ResumeDataset()
	fmt.Println("structured table:", ds.Table)
	fmt.Println("test split      :", datagen.SplitStats(&ds.Test))
	c := experiments.ResumeComparison()
	fmt.Println()
	experiments.RenderTableXI(os.Stdout, c)
	fmt.Println()
	experiments.RenderFig7(os.Stdout, c) // Fig 9 is the Résumé instance of the bar chart
	fmt.Println()
	experiments.RenderFig10(os.Stdout, c)
	fmt.Println()
	experiments.RenderStageCosts(os.Stdout, c)
}
