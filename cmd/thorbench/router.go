package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"time"

	"thor/internal/experiments"
	"thor/internal/serve"
)

// routerBitIdentity records the pre-load correctness proof: the same request
// answered by a backend directly and through the router must produce the
// same fill.
type routerBitIdentity struct {
	// Samples is the number of request bodies compared.
	Samples int `json:"samples"`
	// Identical counts samples whose entities and assignments matched
	// exactly (Stats carries wall-clock timings and is excluded).
	Identical int `json:"identical"`
	// Brownouts counts router responses carrying a degraded marker; the
	// identity contract only binds non-brownout responses, and with every
	// backend healthy this must be zero.
	Brownouts int `json:"brownouts"`
}

// routerBaseline is the BENCH_ROUTER_BASELINE.json document.
type routerBaseline struct {
	// Benchmark identifies the workload shape.
	Benchmark string `json:"benchmark"`
	// Dataset names the corpus driven through the tier.
	Dataset string `json:"dataset"`
	// Backends is the number of thord processes behind the router.
	Backends int `json:"backends"`
	// DocsPerRequest is the fixed request size.
	DocsPerRequest int `json:"docs_per_request"`
	// DurationS is the measured wall clock per level, in seconds.
	DurationS float64 `json:"duration_s"`
	// Levels are the per-concurrency measurements through the router.
	Levels []serveLevel `json:"levels"`
	// SingleNodeRPS is the single-process c=64 throughput from
	// BENCH_SERVE_BASELINE.json, when present (0 otherwise).
	SingleNodeRPS float64 `json:"single_node_rps,omitempty"`
	// ScalingVsSingleNode is the router's best-level throughput over
	// SingleNodeRPS. Recorded honestly: on a single-core machine the
	// processes time-share one CPU and the ratio stays near (or below) 1 —
	// the number documents the environment rather than asserting a target.
	ScalingVsSingleNode float64 `json:"scaling_vs_single_node,omitempty"`
	// BitIdentity is the pre-load correctness comparison.
	BitIdentity routerBitIdentity `json:"bit_identity"`
}

// runRouter benchmarks the sharded serving tier end to end: it builds (or is
// given) the thord and thor-router binaries, spawns N backends plus one
// router as separate processes, proves fill bit-identity through the router,
// then drives closed-loop load through the router at each concurrency level
// and records throughput against the single-node serving baseline.
func runRouter(outPath, serveBaselinePath string, duration time.Duration, levelsCSV string, nBackends int, thordBin, routerBin string) {
	levels, err := parseLevels(levelsCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thorbench:", err)
		os.Exit(2)
	}
	if nBackends < 1 {
		fmt.Fprintln(os.Stderr, "thorbench: -router-backends must be at least 1")
		os.Exit(2)
	}
	tmp, err := os.MkdirTemp("", "thorbench-router-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	if thordBin == "" || routerBin == "" {
		built, err := buildBinaries(tmp)
		if err != nil {
			fatal(fmt.Errorf("building thord/thor-router (pass -thord-bin/-router-bin to skip): %w", err))
		}
		if thordBin == "" {
			thordBin = built["thord"]
		}
		if routerBin == "" {
			routerBin = built["thor-router"]
		}
	}

	// Materialize the dataset for the subprocesses: the cleared test table
	// (fill target), the full table (fine-tuning knowledge) and the real
	// embedding space, exactly the shape the in-process -serve mode uses.
	ds := experiments.DiseaseDataset()
	testPath := filepath.Join(tmp, "test-table.json")
	knowPath := filepath.Join(tmp, "knowledge.json")
	vecPath := filepath.Join(tmp, "vectors.thorvec")
	if err := writeFileWith(testPath, ds.TestTable().WriteJSON); err != nil {
		fatal(err)
	}
	if err := writeFileWith(knowPath, ds.Table.WriteJSON); err != nil {
		fatal(err)
	}
	f, err := os.Create(vecPath)
	if err != nil {
		fatal(err)
	}
	_, err = ds.Space.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	// Spawn the tier: N identical replicas of one logical shard, then the
	// router over them.
	var procs []*exec.Cmd
	defer func() { stopProcs(procs) }()
	var backendAddrs []string
	for i := 0; i < nBackends; i++ {
		addr := pickAddr()
		cmd := exec.Command(thordBin,
			"-table", testPath,
			"-knowledge", knowPath,
			"-vectors", vecPath,
			"-tau", fmt.Sprintf("%g", experiments.BestTau),
			"-addr", addr,
			"-shard-id", "all",
			"-queue-depth", "128",
			"-log-level", "warn")
		cmd.Stderr = mustLogFile(tmp, fmt.Sprintf("thord-%d.log", i))
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("start thord %d: %w", i, err))
		}
		procs = append(procs, cmd)
		backendAddrs = append(backendAddrs, addr)
	}
	for i, addr := range backendAddrs {
		if err := waitReady("http://"+addr, 60*time.Second); err != nil {
			fatal(fmt.Errorf("thord %d (%s): %w (see %s/thord-%d.log)", i, addr, err, tmp, i))
		}
	}
	routerAddr := pickAddr()
	rcmd := exec.Command(routerBin,
		"-backends", joinComma(backendAddrs),
		"-addr", routerAddr,
		"-log-level", "warn")
	rcmd.Stderr = mustLogFile(tmp, "thor-router.log")
	if err := rcmd.Start(); err != nil {
		fatal(fmt.Errorf("start thor-router: %w", err))
	}
	procs = append(procs, rcmd)
	if err := waitReady("http://"+routerAddr, 30*time.Second); err != nil {
		fatal(fmt.Errorf("thor-router (%s): %w", routerAddr, err))
	}

	bodies := make([][]byte, len(ds.Test.Docs))
	for i, d := range ds.Test.Docs {
		b, err := json.Marshal(serve.Request{Documents: []serve.Document{{
			Name: d.Name, DefaultSubject: d.DefaultSubject, Text: d.Text,
		}}})
		if err != nil {
			fatal(err)
		}
		bodies[i] = b
	}

	header(fmt.Sprintf("Router benchmark — closed-loop load through thor-router over %d thord backend(s)", nBackends))
	identity := proveBitIdentity("http://"+backendAddrs[0], "http://"+routerAddr, bodies)
	fmt.Printf("bit-identity: %d/%d samples identical, %d brownouts\n\n",
		identity.Identical, identity.Samples, identity.Brownouts)
	if identity.Identical != identity.Samples || identity.Brownouts != 0 {
		fatal(fmt.Errorf("router responses deviated from direct backend responses (%d/%d identical, %d brownouts)",
			identity.Identical, identity.Samples, identity.Brownouts))
	}

	base := routerBaseline{
		Benchmark:      "router-closed-loop",
		Dataset:        "disease",
		Backends:       nBackends,
		DocsPerRequest: 1,
		DurationS:      duration.Seconds(),
		BitIdentity:    identity,
	}
	routerURL := "http://" + routerAddr + "/v1/fill"
	var best float64
	for _, c := range levels {
		sampler := startRuntimeSampler()
		lv := driveLevel(routerURL, bodies, c, duration)
		lv.Runtime = sampler.finish()
		if lv.Requests > 0 {
			lv.AllocsPerRequest = float64(lv.Runtime.AllocObjects) / float64(lv.Requests)
		}
		base.Levels = append(base.Levels, lv)
		if lv.ThroughputRPS > best {
			best = lv.ThroughputRPS
		}
		fmt.Printf("c=%-3d  %8.1f req/s   p50 %7.2fms  p95 %7.2fms  p99 %7.2fms   retries %d  errors %d\n",
			lv.Concurrency, lv.ThroughputRPS,
			lv.LatencyMS["p50"], lv.LatencyMS["p95"], lv.LatencyMS["p99"],
			lv.Retries, lv.Errors)
	}

	if rps := singleNodeRPS(serveBaselinePath, 64); rps > 0 {
		base.SingleNodeRPS = rps
		base.ScalingVsSingleNode = best / rps
		fmt.Printf("\nsingle-node c=64 baseline: %.1f req/s  →  scaling ×%.2f (%d backends)\n",
			rps, base.ScalingVsSingleNode, nBackends)
	}

	out, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err = enc.Encode(base)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	logger.Info("router baseline written", "path", outPath)
}

// buildBinaries compiles thord and thor-router into dir using the module in
// the current working directory.
func buildBinaries(dir string) (map[string]string, error) {
	out := make(map[string]string)
	for _, name := range []string{"thord", "thor-router"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build ./cmd/%s: %v: %s", name, err, msg)
		}
		out[name] = bin
	}
	return out, nil
}

// writeFileWith streams fn into a new file at path.
func writeFileWith(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// mustLogFile opens a subprocess log sink inside dir.
func mustLogFile(dir, name string) *os.File {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	return f
}

// pickAddr reserves a free loopback port and returns host:port. The listener
// is closed before the subprocess binds it; the race window is acceptable
// for a benchmark harness.
func pickAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// joinComma joins addresses for the router's -backends flag.
func joinComma(addrs []string) string {
	out := ""
	for i, a := range addrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// waitReady polls base/readyz until it answers 200.
func waitReady(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("not ready after %v: %w", timeout, err)
			}
			return fmt.Errorf("not ready after %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stopProcs terminates the tier gracefully, escalating to SIGKILL after a
// grace period.
func stopProcs(procs []*exec.Cmd) {
	for _, p := range procs {
		if p.Process != nil {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
	}
	done := make(chan struct{})
	go func() {
		for _, p := range procs {
			_ = p.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Kill()
			}
		}
		<-done
	}
}

// proveBitIdentity answers a sample of request bodies both directly against
// one backend and through the router and compares the fills. Entities and
// assignments must match exactly; Stats is excluded (it carries wall-clock
// timings that legitimately differ per call).
func proveBitIdentity(backendBase, routerBase string, bodies [][]byte) routerBitIdentity {
	const samples = 32
	client := &http.Client{Timeout: 30 * time.Second}
	id := routerBitIdentity{}
	for i := 0; i < samples && i < len(bodies); i++ {
		id.Samples++
		direct, _, err := fillOnce(client, backendBase, bodies[i])
		if err != nil {
			fatal(fmt.Errorf("bit-identity: direct fill %d: %w", i, err))
		}
		via, degraded, err := fillOnce(client, routerBase, bodies[i])
		if err != nil {
			fatal(fmt.Errorf("bit-identity: routed fill %d: %w", i, err))
		}
		if degraded {
			id.Brownouts++
			continue
		}
		if reflect.DeepEqual(direct.Entities, via.Entities) &&
			reflect.DeepEqual(direct.Assignments, via.Assignments) {
			id.Identical++
		}
	}
	return id
}

// fillOnce posts one body to base/v1/fill and decodes the response plus its
// brownout marker.
func fillOnce(client *http.Client, base string, body []byte) (*serve.Response, bool, error) {
	resp, err := client.Post(base+"/v1/fill", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		serve.Response
		Degraded []json.RawMessage `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, false, err
	}
	return &out.Response, len(out.Degraded) > 0, nil
}

// singleNodeRPS reads the single-process serving baseline and returns the
// throughput at the given concurrency (0 when the file or level is absent).
func singleNodeRPS(path string, concurrency int) float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var base serveBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0
	}
	for _, lv := range base.Levels {
		if lv.Concurrency == concurrency {
			return lv.ThroughputRPS
		}
	}
	return 0
}
