// Command thorbench regenerates every table and figure of the paper's
// evaluation section from the synthetic datasets.
//
// Usage:
//
//	thorbench               # all experiments
//	thorbench -exp 1        # Experiment 1 only (Tables V–VIII, Figs 5–7)
//	thorbench -exp 2        # Experiment 2 only (Tables IX–X, Fig 8)
//	thorbench -exp 3        # Experiment 3 only (Table XI, Figs 9–10)
//
// Observability (see the Observability section of README.md):
//
//	thorbench -metrics-addr :6060        # /debug/vars, /debug/pprof/*, /debug/thor/spans
//	thorbench -exp 1 -metrics-json m.json# write the per-stage metrics snapshot
//	thorbench -trace-out run.trace       # runtime execution trace (go tool trace)
//
// Chaos mode runs both datasets under deterministic fault injection and
// verifies the isolation invariant (healthy documents bit-identical to a
// clean run); non-zero exit if it is violated:
//
//	thorbench -chaos -chaos-seed 42 -chaos-error-rate 0.03 -chaos-panic-rate 0.01
//
// Serving mode drives closed-loop HTTP load against an in-process instance
// of thord's engine (internal/serve) and records throughput and latency
// percentiles per concurrency level:
//
//	thorbench -serve -serve-levels 1,8,64 -serve-out BENCH_SERVE_BASELINE.json
package main
