// Command thor-router is the serving-tier front door: an HTTP router that
// fans /v1/fill and /v1/extract over a fleet of thord backends.
//
// Topology comes from either -backends (identical replicas of one logical
// shard, documents spread by rendezvous hashing) or -shard-map (a JSON file
// partitioning concepts across shards, each with its own replica set).
// Replica choice is health-aware: a background prober classifies each
// backend from /readyz and its SLO burn rate, per-backend circuit breakers
// isolate failing replicas, slow primaries are hedged against a second
// replica, transient failures are retried with backend Retry-After hints
// honored, and a shard with no replicas left degrades to partial responses
// carrying a per-shard `degraded` marker instead of failing the request.
//
// Observability mirrors thord: /metrics serves the OpenMetrics exposition
// of the router.* families, /debug/thor/spans the span ring, and /v1/topology
// the live per-backend health/breaker view thorctl renders.
//
// Exit codes: 0 clean shutdown (drained), 1 fatal error, 2 usage error.
package main
