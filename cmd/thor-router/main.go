package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thor/internal/chaos"
	"thor/internal/obs"
	"thor/internal/router"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code so deferred cleanup executes on every path.
func run() int {
	var (
		backends       = flag.String("backends", "", "comma-separated thord backends forming one replicated shard (e.g. host1:8080,host2:8080)")
		shardMapPath   = flag.String("shard-map", "", "JSON shard map partitioning concepts across shards (mutually exclusive with -backends)")
		addr           = flag.String("addr", ":8090", "listen address")
		hedgeFactor    = flag.Float64("hedge-factor", 1.5, "hedge threshold as a multiple of the primary's observed p95")
		hedgeMin       = flag.Duration("hedge-min", 20*time.Millisecond, "hedge threshold floor (also used before the p95 sketch has samples)")
		hedgeMax       = flag.Duration("hedge-max", 2*time.Second, "hedge threshold ceiling")
		retryAttempts  = flag.Int("retry-attempts", 3, "attempts per shard send for transient failures")
		retryBase      = flag.Duration("retry-base", 10*time.Millisecond, "base backoff between retries (exponential, jittered)")
		retryCap       = flag.Duration("retry-cap", 250*time.Millisecond, "backoff ceiling (backend Retry-After hints are honored up to 30s)")
		brkThreshold   = flag.Int("breaker-threshold", 5, "consecutive failures that open a backend's circuit breaker")
		brkCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before admitting a probe")
		healthInterval = flag.Duration("health-interval", 500*time.Millisecond, "background health-prober period")
		maxBody        = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests before exiting anyway")
		spanCap        = flag.Int("span-capacity", 4096, "span ring-buffer capacity for /debug/thor/spans")
		traceSlow      = flag.Duration("trace-slow", 250*time.Millisecond, "flight-recorder slow threshold: traces at or above it are always retained")
		traceKeep      = flag.Int("trace-keep", 256, "flight-recorder capacity for slow/errored/shed/quarantined traces")
		logFormat      = flag.String("log-format", "text", "structured log format: text or json")
		logLevel       = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: thor-router -backends host1:8080,host2:8080 [flags]\n"+
				"       thor-router -shard-map map.json [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nExit codes:\n  0  clean shutdown (drained)\n  1  fatal error\n  2  usage error\n")
	}
	flag.Parse()
	if (*backends == "") == (*shardMapPath == "") {
		usageErr("exactly one of -backends or -shard-map is required")
	}
	if *hedgeFactor <= 0 || *hedgeMin < 0 || *hedgeMax < 0 {
		usageErr("-hedge-factor/-hedge-min/-hedge-max out of range")
	}
	if *retryAttempts < 1 || *retryBase < 0 || *retryCap < 0 {
		usageErr("-retry-attempts/-retry-base/-retry-cap out of range")
	}
	if *brkThreshold < 1 || *brkCooldown <= 0 {
		usageErr("-breaker-threshold/-breaker-cooldown out of range")
	}
	if *healthInterval <= 0 || *maxBody < 1 || *drainTimeout < 0 || *spanCap < 1 {
		usageErr("-health-interval/-max-body/-drain-timeout/-span-capacity out of range")
	}
	if *traceSlow < 0 || *traceKeep < 1 {
		usageErr("-trace-slow/-trace-keep out of range")
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		usageErr(err.Error())
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		usageErr(err.Error())
	}

	var shards router.ShardMap
	if *backends != "" {
		var list []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				list = append(list, b)
			}
		}
		shards = router.SingleShard(list)
	} else {
		raw, err := os.ReadFile(*shardMapPath)
		if err != nil {
			return fatal(err)
		}
		if shards, err = router.ParseShardMap(raw); err != nil {
			return fatal(fmt.Errorf("%s: %w", *shardMapPath, err))
		}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(*spanCap)
	// The flight recorder retains whole router traces — including per-backend
	// child spans with hedge/retry attribution — so thorctl -trace can fetch
	// the router's fragment of a request and stitch it against the backends'.
	recorder := obs.NewRecorder(obs.RecorderOptions{
		SlowThreshold:   *traceSlow,
		KeepInteresting: *traceKeep,
	})
	tracer.SetRecorder(recorder)
	journal := obs.NewJournal(obs.JournalConfig{
		Node:     *addr,
		Registry: reg,
	})
	reg.PublishExpvar("router")

	rt, err := router.New(router.Options{
		Shards:         shards,
		Metrics:        reg,
		Tracer:         tracer,
		Journal:        journal,
		Logger:         logger,
		HedgeFactor:    *hedgeFactor,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		Retry:          chaos.Backoff{Attempts: *retryAttempts, Base: *retryBase, Cap: *retryCap},
		Breaker:        router.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		HealthInterval: *healthInterval,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		return fatal(err)
	}
	defer rt.Close()

	// The outer mux layers the observability endpoints over the router's
	// own (/v1/*, /healthz, /readyz, /v1/topology).
	mux := http.NewServeMux()
	debug := obs.DebugHandler(obs.DebugOptions{
		Registry: reg,
		Tracer:   tracer,
		Recorder: recorder,
		Journal:  journal,
	})
	mux.Handle("/debug/", debug)
	mux.Handle("/metrics", debug)
	mux.Handle("/", rt.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	nBackends := 0
	for _, sh := range shards.Shards {
		nBackends += len(sh.Backends)
	}
	logger.Info("routing",
		"addr", ln.Addr().String(),
		"shards", len(shards.Shards),
		"backends", nBackends,
		"hedge_min", hedgeMin.String(),
		"breaker_threshold", *brkThreshold)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errCh:
		return fatal(fmt.Errorf("serve: %w", err))
	}

	// Router requests are short proxied calls: closing the listener with the
	// drain budget lets every in-flight fan-out finish; the prober stops
	// after the last request so /v1/topology stays truthful to the end.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fatal(fmt.Errorf("drain: %w", err))
	}
	logger.Info("drained cleanly")
	return 0
}

// usageErr prints the message plus usage and exits 2.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "thor-router:", msg)
	flag.Usage()
	os.Exit(2)
}

// fatal reports err and returns the fatal exit code.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "thor-router:", err)
	return 1
}
