package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	verbose := flag.Bool("v", false, "print every package checked")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	findings, err := Lint(roots, *verbose, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(findings))
		os.Exit(1)
	}
}
