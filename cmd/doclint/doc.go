// Command doclint enforces the repository's documentation standard: every
// package under the given roots must carry a package comment, and every
// exported identifier — types, functions, methods, constants, variables,
// struct fields and interface methods — must carry a doc comment (a
// preceding // comment or, for fields and specs, a trailing line comment).
//
// Usage:
//
//	doclint [-v] [dir ...]
//
// With no directories, ./internal/... and ./cmd/... relative to the current
// working directory are checked. Test files (_test.go) are exempt. The exit
// code is 0 when documentation is complete, 1 when any identifier is
// undocumented, and 2 on a usage or parse error. Each finding is printed as
// "file:line: identifier" so editors can jump to it.
//
// doclint runs in CI (see .github/workflows/ci.yml) and as a test
// (TestRepositoryDocumented), so `go test ./...` fails on undocumented
// exports.
package main
