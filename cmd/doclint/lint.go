package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one undocumented exported identifier, rendered as
// "file:line: message".
type Finding struct {
	// Pos locates the identifier.
	Pos token.Position
	// Msg names the identifier and what is missing.
	Msg string
}

// String renders the finding in the conventional file:line: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Msg)
}

// Lint walks every Go package under the given root directories and returns
// the undocumented exported identifiers, sorted by position. When verbose,
// each directory checked is logged to logw.
func Lint(roots []string, verbose bool, logw io.Writer) ([]Finding, error) {
	var dirs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && !strings.HasPrefix(d.Name(), ".") && d.Name() != "testdata" {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var findings []Finding
	for _, dir := range dirs {
		fs, err := lintDir(dir, verbose, logw)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return findings, nil
}

// lintDir checks the single package in dir (if any). Test files are skipped
// entirely: examples and test helpers document themselves through their
// assertions.
func lintDir(dir string, verbose bool, logw io.Writer) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var findings []Finding
	for _, pkg := range pkgs {
		if verbose {
			fmt.Fprintf(logw, "doclint: checking %s\n", dir)
		}
		findings = append(findings, lintPackage(fset, dir, pkg)...)
	}
	return findings, nil
}

// lintPackage applies the documentation rules to one parsed package.
func lintPackage(fset *token.FileSet, dir string, pkg *ast.Package) []Finding {
	var findings []Finding
	note := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, Finding{Pos: fset.Position(pos), Msg: fmt.Sprintf(format, args...)})
	}

	// Rule 1: the package must carry a package comment in some file.
	hasPkgDoc := false
	var first *ast.File
	var firstName string
	for name, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if !hasPkgDoc && first != nil {
		note(first.Package, "package %s has no package comment", pkg.Name)
	}

	// Rule 2: every exported top-level identifier needs a doc comment; struct
	// fields and interface methods accept trailing line comments too.
	exportedTypes := exportedTypeNames(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				lintFunc(note, d, exportedTypes)
			case *ast.GenDecl:
				lintGen(note, d)
			}
		}
	}
	return findings
}

// exportedTypeNames collects the package's exported named types, so methods
// on unexported types (which no importer can reach) are exempt.
func exportedTypeNames(pkg *ast.Package) map[string]bool {
	names := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.IsExported() {
					names[ts.Name.Name] = true
				}
			}
		}
	}
	return names
}

// lintFunc checks one function or method declaration.
func lintFunc(note func(token.Pos, string, ...any), d *ast.FuncDecl, exportedTypes map[string]bool) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv != "" && !exportedTypes[recv] {
			return // method on an unexported type
		}
		if !hasDoc(d.Doc) {
			note(d.Name.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
		}
		return
	}
	if !hasDoc(d.Doc) {
		note(d.Name.Pos(), "exported function %s has no doc comment", d.Name.Name)
	}
}

// lintGen checks one const, var or type declaration group. A doc comment on
// the group covers every spec in it; otherwise each exported spec needs its
// own preceding or trailing comment.
func lintGen(note func(token.Pos, string, ...any), d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
				note(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
			lintTypeBody(note, s)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !groupDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
					kind := "variable"
					if d.Tok == token.CONST {
						kind = "constant"
					}
					note(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}

// lintTypeBody checks the exported members of an exported struct or
// interface type: fields and embedded interface methods.
func lintTypeBody(note func(token.Pos, string, ...any), s *ast.TypeSpec) {
	if !s.Name.IsExported() {
		return
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			if len(field.Names) == 0 {
				continue // embedded field: documented by its own type
			}
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				if !hasDoc(field.Doc) && !hasDoc(field.Comment) {
					note(name.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if !name.IsExported() {
					continue
				}
				if !hasDoc(m.Doc) && !hasDoc(m.Comment) {
					note(name.Pos(), "exported interface method %s.%s has no doc comment", s.Name.Name, name.Name)
				}
			}
		}
	}
}

// receiverTypeName unwraps the receiver's named type (through pointers and
// type parameters).
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// hasDoc reports whether the comment group carries non-empty text.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && len(strings.TrimSpace(cg.Text())) > 0
}
