// Schema evolution: THOR's adaptation advantage over supervised models.
//
// The paper's Experiment 2 ends on this point: extending the reference
// schema with a new concept forces a supervised LM through a full
// re-annotation and re-training cycle, while THOR only re-runs fine-tuning
// on the (updated) structured data — seconds instead of weeks.
//
// This example starts from a reduced Disease A-Z schema, runs THOR, then
// evolves the schema by adding the 'Medicine' concept with a handful of
// structured instances, re-fine-tunes and shows the new concept being filled
// with zero annotation effort.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"time"

	"thor/internal/datagen"
	"thor/internal/schema"
	"thor/internal/thor"
)

func main() {
	ds := datagen.Disease(datagen.DiseaseSeed)

	// --- Stage 1: a reduced schema without 'Medicine' ---
	reduced := reducedTable(ds.Table, "Medicine")
	target1 := testTableFor(ds, reduced.Schema)
	res1, err := thor.Run(target1, ds.Space, ds.Test.Docs, thor.Config{
		Tau: 0.7, Knowledge: reduced, Lexicon: ds.Lexicon,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 (no Medicine): %d concepts, %d slots filled\n",
		len(reduced.Schema.Concepts), res1.Stats.Filled)

	// --- Stage 2: the schema evolves — 'Medicine' is added ---
	start := time.Now()
	evolved := reduced.Clone() // structured data stays; schema grows
	evolved.Schema = evolved.Schema.WithConcept("Medicine")
	for _, row := range ds.Table.Rows {
		if vals := row.Values("Medicine"); len(vals) > 0 {
			for _, v := range vals {
				evolved.Row(row.Subject).Add("Medicine", v)
			}
		}
	}
	target2 := testTableFor(ds, evolved.Schema)
	res2, err := thor.Run(target2, ds.Space, ds.Test.Docs, thor.Config{
		Tau: 0.7, Knowledge: evolved, Lexicon: ds.Lexicon,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptation := time.Since(start)

	medicines := 0
	for _, row := range res2.Table.Rows {
		medicines += len(row.Values("Medicine"))
	}
	fmt.Printf("stage 2 (evolved)    : %d concepts, %d slots filled, %d Medicine values\n",
		len(evolved.Schema.Concepts), res2.Stats.Filled, medicines)
	fmt.Printf("\nadaptation cost: %v of re-fine-tuning — no re-annotation, no re-training.\n",
		adaptation.Round(time.Millisecond))
	fmt.Println("(the paper: re-annotating for one new concept repeats a 600+ hour process)")

	subject := ds.Test.Subjects[0]
	if vals := res2.Table.Row(subject).Values("Medicine"); len(vals) > 0 {
		fmt.Printf("\nnew 'Medicine' slots for %q: %v\n", subject, vals)
	}
}

// reducedTable copies a table dropping one concept from schema and cells.
func reducedTable(t *schema.Table, drop schema.Concept) *schema.Table {
	sch := schema.NewSchema(t.Schema.Subject)
	for _, c := range t.Schema.Concepts {
		if c != drop {
			sch = sch.WithConcept(c)
		}
	}
	out := schema.NewTable(sch)
	for _, row := range t.Rows {
		nr := out.AddRow(row.Subject)
		for c, vs := range row.Cells {
			if c == drop {
				continue
			}
			for _, v := range vs {
				nr.Add(c, v)
			}
		}
	}
	return out
}

// testTableFor builds a cleared evaluation table over the given schema.
func testTableFor(ds *datagen.Dataset, sch schema.Schema) *schema.Table {
	t := schema.NewTable(sch)
	for _, s := range ds.Test.Subjects {
		t.AddRow(s)
	}
	return t
}
