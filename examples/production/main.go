// Production: the full feature surface in one run — parallel document
// workers, the knowledge-graph context filter (the paper's future-work
// extension), provenance tracking and the JSON run report.
//
//	go run ./examples/production
package main

import (
	"fmt"
	"log"
	"os"

	"thor/internal/datagen"
	"thor/internal/kg"
	"thor/internal/thor"
)

func main() {
	ds := datagen.Disease(datagen.DiseaseSeed)

	// The knowledge graph derived from the integrated data powers the
	// context filter: entities typed inconsistently with the integration
	// context are vetoed before slot filling.
	graph := kg.FromTable(ds.Table)
	fmt.Printf("knowledge graph: %d triples from %d rows\n", graph.Len(), len(ds.Table.Rows))

	res, err := thor.Run(ds.TestTable(), ds.Space, ds.Test.Docs, thor.Config{
		Tau:       0.7,
		Knowledge: ds.Table,
		Lexicon:   ds.Lexicon,
		Workers:   4, // parallel extraction; results identical to sequential
		Validator: kg.NewValidator(graph),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d docs, %d entities, %d slots filled in %v\n",
		res.Stats.Documents, res.Stats.Entities, res.Stats.Filled,
		res.Stats.Total().Round(1e6))

	// Provenance: every filled value traces back to its source document.
	fmt.Println("\nsample provenance:")
	shown := 0
	for _, e := range res.AllEntities() {
		if e.Concept == "Complication" && shown < 5 {
			fmt.Printf("  %-28s <- %-14s from doc %q (score %.2f)\n",
				e.Phrase, e.Subject, e.Doc, e.Score)
			shown++
		}
	}

	// The machine-readable run report (written here to stdout's sibling).
	f, err := os.CreateTemp("", "thor-report-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteReport(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON report written to %s\n", f.Name())
}
