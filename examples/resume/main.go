// Résumé: the generalizability scenario of Experiment 3.
//
// Documents bundle five CVs each, so the pipeline must segment subjects by
// their sentence-initial mentions rather than one-document-one-subject. The
// example enriches the cleared evaluation table and prints one candidate's
// recovered profile.
//
//	go run ./examples/resume
package main

import (
	"fmt"
	"log"

	"thor/internal/datagen"
	"thor/internal/eval"
	"thor/internal/thor"
)

func main() {
	ds := datagen.Resume(datagen.ResumeSeed)
	fmt.Println("structured table:", ds.Table)
	fmt.Println("test split      :", datagen.SplitStats(&ds.Test))
	fmt.Printf("documents bundle %d CVs each — segmentation works by name mentions\n\n",
		len(ds.Test.Subjects)/len(ds.Test.Docs))

	target := ds.TestTable()
	res, err := thor.Run(target, ds.Space, ds.Test.Docs, thor.Config{
		Tau:       1.0, // the precision-oriented setting of Table XI
		Knowledge: ds.Table,
		Lexicon:   ds.Lexicon,
	})
	if err != nil {
		log.Fatal(err)
	}

	var preds []eval.Mention
	for _, e := range res.AllEntities() {
		preds = append(preds, eval.Mention{Subject: e.Subject, Concept: e.Concept, Phrase: e.Phrase})
	}
	o := eval.Evaluate(preds, ds.Test.Gold).Overall
	fmt.Printf("THOR (τ=1.0): P=%.2f R=%.2f F1=%.2f — %d slots filled across %d candidates\n",
		o.Precision(), o.Recall(), o.F1(), res.Stats.Filled, len(target.Rows))

	// Print the first candidate whose profile came back non-empty.
	for _, subject := range ds.Test.Subjects {
		row := res.Table.Row(subject)
		filled := 0
		for _, c := range res.Table.Schema.NonSubject() {
			filled += len(row.Values(c))
		}
		if filled < 5 {
			continue
		}
		fmt.Printf("\nrecovered profile for %q:\n", subject)
		for _, c := range res.Table.Schema.NonSubject() {
			if vals := row.Values(c); len(vals) > 0 {
				fmt.Printf("  %-22s %v\n", c, vals)
			}
		}
		break
	}
}
