// Disease A-Z: slot-filling at the paper's scale with a τ sweep.
//
// Generates the synthetic Disease A-Z dataset (284-row integrated table, 11
// concepts, 91 test documents), clears the evaluation table to the paper's
// worst case, runs THOR at several thresholds and reports the
// precision/recall trade-off plus a sample of the filled slots.
//
//	go run ./examples/disease
package main

import (
	"fmt"
	"log"
	"time"

	"thor/internal/datagen"
	"thor/internal/eval"
	"thor/internal/thor"
)

func main() {
	ds := datagen.Disease(datagen.DiseaseSeed)
	fmt.Println("structured table :", ds.Table)
	fmt.Println("test split       :", datagen.SplitStats(&ds.Test))
	target := ds.TestTable()
	fmt.Printf("evaluation table : %d rows, all non-subject cells ⊥\n\n", len(target.Rows))

	fmt.Printf("%-6s %8s %7s %7s %7s %9s\n", "tau", "time", "P", "R", "F1", "filled")
	var best *thor.Result
	bestF1 := -1.0
	for _, tau := range []float64{0.5, 0.7, 0.9} {
		start := time.Now()
		res, err := thor.Run(target, ds.Space, ds.Test.Docs, thor.Config{
			Tau:       tau,
			Knowledge: ds.Table, // fine-tune on the full structured table
			Lexicon:   ds.Lexicon,
		})
		if err != nil {
			log.Fatal(err)
		}
		preds := make([]eval.Mention, 0)
		for _, e := range res.AllEntities() {
			preds = append(preds, eval.Mention{Subject: e.Subject, Concept: e.Concept, Phrase: e.Phrase})
		}
		o := eval.Evaluate(preds, ds.Test.Gold).Overall
		fmt.Printf("%-6.1f %8s %7.2f %7.2f %7.2f %9d\n",
			tau, time.Since(start).Round(time.Millisecond),
			o.Precision(), o.Recall(), o.F1(), res.Stats.Filled)
		if f := o.F1(); f > bestF1 {
			bestF1, best = f, res
		}
	}

	// Show one enriched row from the best run.
	subject := ds.Test.Subjects[0]
	row := best.Table.Row(subject)
	fmt.Printf("\nenriched row for %q (best run):\n", subject)
	for _, c := range best.Table.Schema.NonSubject() {
		vals := row.Values(c)
		if len(vals) > 4 {
			vals = vals[:4]
		}
		fmt.Printf("  %-14s %v\n", c, vals)
	}
}
