// Quickstart: the paper's Fig. 1 running example, end to end.
//
// Two health data sources are integrated over the 'Disease' subject concept;
// the integration produces labeled nulls (⊥). THOR then conceptualizes an
// external text against the integrated schema and fills the missing values.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"thor/internal/embed"
	"thor/internal/integrate"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/thor"
)

func main() {
	// --- The two sources of Fig. 1 ---
	d1 := schema.NewTable(schema.NewSchema("Disease", "Anatomy"))
	d1.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")

	d2 := schema.NewTable(schema.NewSchema("Disease", "Complication"))
	d2.AddRow("Tuberculosis").Add("Complication", "skin cancer")

	// --- Integration: full disjunction over the subject concept ---
	table, err := integrate.FullDisjunction("Disease",
		integrate.Source{Name: "D1", Table: d1},
		integrate.Source{Name: "D2", Table: d2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrated:", table)
	fmt.Println(integrate.Describe(table, 2))

	// --- A tiny embedding space standing in for pre-trained vectors ---
	// (real deployments plug in their own; the datagen package shows how a
	// full space is built).
	space := embed.NewSpace()
	anatomy := embed.HashVector("centroid:anatomy")
	complication := embed.HashVector("centroid:complication")
	put := func(centroid embed.Vector, alpha float64, noise string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noise
				if key == "" {
					key = "noise:" + part
				}
				space.Add(part, embed.Blend(centroid, embed.HashVector(key), alpha))
			}
		}
	}
	put(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs")
	put(complication, 0.60, "", "unsteadiness", "empyema")
	put(complication, 0.85, "family:cancer", "cancer", "cancerous", "non-cancerous", "tumor")
	space.Add("skin", embed.Blend(complication, embed.HashVector("noise:skin"), 0.55))

	// --- The external document of Fig. 1 ---
	doc := segment.Document{
		Name: "health-portal",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor. " +
			"It develops on the main nerve leading from the inner ear to the brain. " +
			"Tuberculosis generally damages the lungs.",
	}

	// --- Run THOR ---
	res, err := thor.Run(table, space, []segment.Document{doc}, thor.Config{Tau: 0.6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nextracted entities:")
	for _, e := range res.AllEntities() {
		fmt.Printf("  %-18s %-14s %-28s (c_m=%q score=%.2f)\n",
			e.Subject, e.Concept, e.Phrase, e.Matched, e.Score)
	}

	fmt.Println("\nenriched table:")
	if err := res.Table.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsparsity before: %.0f%%   after: %.0f%%\n",
		100*table.Sparsity().Ratio(), 100*res.Table.Sparsity().Ratio())
}
