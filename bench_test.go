package thor_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benchmarks for the design choices DESIGN.md calls out.
// Each benchmark regenerates its artifact from the deterministic synthetic
// datasets and reports the headline metric via b.ReportMetric; run with
// `go test -bench=. -benchmem` or see the rendered tables via
// `go run ./cmd/thorbench`.

import (
	"fmt"
	"io"
	"testing"

	"thor/internal/eval"
	"thor/internal/experiments"
	"thor/internal/kg"
	"thor/internal/matcher"
	"thor/internal/thor"
)

// reportOutcome attaches the evaluation headline to the benchmark result.
func reportOutcome(b *testing.B, o eval.Outcome) {
	b.ReportMetric(o.Precision(), "P")
	b.ReportMetric(o.Recall(), "R")
	b.ReportMetric(o.F1(), "F1")
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderTableV(io.Discard, c)
		reportOutcome(b, c.ThorAt(experiments.BestTau).Report.Overall)
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderFig5(io.Discard, c)
		first, last := c.Thor[0].Report.Overall, c.Thor[len(c.Thor)-1].Report.Overall
		b.ReportMetric(first.Recall()-last.Recall(), "recall-span")
		b.ReportMetric(last.Precision()-first.Precision(), "precision-span")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderFig6(io.Discard, c)
		speedup := c.Thor[0].Measured.Seconds() / c.Thor[len(c.Thor)-1].Measured.Seconds()
		b.ReportMetric(speedup, "t0.5/t1.0")
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderTableVI(io.Discard, c)
		b.ReportMetric(float64(c.ThorAt(0.8).Report.Overall.TP()), "thorTP")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderFig7(io.Discard, c)
		b.ReportMetric(float64(c.ThorAt(0.8).Report.Overall.FN()), "thorFN")
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderTableVII(io.Discard, c)
		// The headline failure mode: UniNER's zero on Composition.
		o := c.Other("UniNER").Report.PerConcept["Composition"]
		b.ReportMetric(float64(o.TP()), "uninerCompositionTP")
	}
}

func BenchmarkTableVIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.DiseaseComparison()
		experiments.RenderTableVIII(io.Discard, c)
		b.ReportMetric(c.ThorAt(0.8).Report.Overall.Sensitivity(), "thorSensitivity")
	}
}

func BenchmarkTableIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Annotation()
		experiments.RenderTableIX(io.Discard, s)
		b.ReportMetric(s.Cost.MaxTokenSeconds, "maxTokenSec")
	}
}

func BenchmarkTableX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Annotation()
		experiments.RenderTableX(io.Discard, s)
		b.ReportMetric(float64(s.CrossoverSubjects), "crossoverSubjects")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Annotation()
		experiments.RenderFig8(io.Discard, s)
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.AnnotationSeconds/3600, "fullAnnotationHours")
	}
}

func BenchmarkTableXI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.ResumeComparison()
		experiments.RenderTableXI(io.Discard, c)
		reportOutcome(b, c.ThorAt(1.0).Report.Overall)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.ResumeComparison()
		experiments.RenderFig7(io.Discard, c)
		b.ReportMetric(float64(c.ThorAt(0.8).Report.Overall.FN()), "thorFN")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.ResumeComparison()
		experiments.RenderFig10(io.Discard, c)
		b.ReportMetric(c.ThorAt(1.0).Report.Overall.F1(), "thorF1")
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

// ablationRun executes THOR at the given τ with a modified configuration
// and returns the evaluation outcome.
func ablationRun(b *testing.B, tau float64, mutate func(*thor.Config)) eval.Outcome {
	b.Helper()
	ds := experiments.DiseaseDataset()
	cfg := thor.Config{
		Tau:       tau,
		Knowledge: ds.Table,
		Lexicon:   ds.Lexicon,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := thor.Run(ds.TestTable(), ds.Space, ds.Test.Docs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var preds []eval.Mention
	for _, e := range res.AllEntities() {
		preds = append(preds, eval.Mention{Subject: e.Subject, Concept: e.Concept, Phrase: e.Phrase})
	}
	return eval.Evaluate(preds, ds.Test.Gold).Overall
}

// BenchmarkAblationScores compares the full three-score refinement against
// semantic-only scoring.
func BenchmarkAblationScores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationRun(b, experiments.BestTau, nil)
		semOnly := ablationRun(b, experiments.BestTau, func(c *thor.Config) { c.UseSemantic = true })
		b.ReportMetric(full.F1(), "F1/full")
		b.ReportMetric(semOnly.F1(), "F1/semantic-only")
	}
}

// BenchmarkAblationExpansion compares τ-expansion against a seeds-only
// matcher at the recall-oriented end of the sweep, where the expanded
// representatives carry the extra reach.
func BenchmarkAblationExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationRun(b, 0.5, nil)
		seedsOnly := ablationRun(b, 0.5, func(c *thor.Config) { c.Matcher.DisableExpansion = true })
		b.ReportMetric(full.Recall(), "R/expanded")
		b.ReportMetric(seedsOnly.Recall(), "R/seeds-only")
	}
}

// BenchmarkAblationChunking compares dependency-parse noun phrases against
// naive n-gram candidates.
func BenchmarkAblationChunking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationRun(b, experiments.BestTau, nil)
		naive := ablationRun(b, experiments.BestTau, func(c *thor.Config) { c.NaiveChunking = true })
		b.ReportMetric(full.Precision(), "P/dep-parse")
		b.ReportMetric(naive.Precision(), "P/naive-ngrams")
	}
}

// --- Microbenchmarks of the pipeline itself ---

func BenchmarkPipelinePrepare(b *testing.B) {
	ds := experiments.DiseaseDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thor.New(ds.TestTable(), ds.Space, thor.Config{
			Tau: experiments.BestTau, Knowledge: ds.Table, Lexicon: ds.Lexicon,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExtractPerDoc(b *testing.B) {
	ds := experiments.DiseaseDataset()
	p, err := thor.New(ds.TestTable(), ds.Space, thor.Config{
		Tau: experiments.BestTau, Knowledge: ds.Table, Lexicon: ds.Lexicon,
	})
	if err != nil {
		b.Fatal(err)
	}
	docs := ds.Test.Docs[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(docs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionKGFilter measures the paper's future-work extension: the
// knowledge-graph context filter. On this corpus its aggregate effect is
// neutral — the pipeline's syntactic refinement and per-concept candidate
// design already avoid cross-concept assignments of known instances, which
// is the error class the filter vetoes (see kg.Validator's unit tests for
// the targeted behavior). The benchmark records both operating points so a
// corpus where the filter matters would surface immediately.
func BenchmarkExtensionKGFilter(b *testing.B) {
	ds := experiments.DiseaseDataset()
	validator := kg.NewValidator(kg.FromTable(ds.Table))
	for i := 0; i < b.N; i++ {
		plain := ablationRun(b, 0.5, nil)
		filtered := ablationRun(b, 0.5, func(c *thor.Config) { c.Validator = validator })
		b.ReportMetric(plain.Precision(), "P/plain")
		b.ReportMetric(filtered.Precision(), "P/kg-filter")
		b.ReportMetric(plain.Recall(), "R/plain")
		b.ReportMetric(filtered.Recall(), "R/kg-filter")
	}
}

// benchQuant measures repeated extraction over the full Disease A-Z corpus
// with the int8 propose tier on or off, on a warm pipeline so the timed loop
// isolates the per-run matching sweep (fine-tuning is paid before the timer).
func benchQuant(b *testing.B, disable bool) {
	ds := experiments.DiseaseDataset()
	p, err := thor.New(ds.TestTable(), ds.Space, thor.Config{
		Tau: experiments.BestTau, Knowledge: ds.Table, Lexicon: ds.Lexicon,
		Matcher: matcher.Config{DisableQuant: disable},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ds.Test.Docs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchQuantOn / BenchmarkMatchQuantOff are the quantized propose
// tier's A/B pair: identical workloads and bit-identical outputs (enforced
// by the equivalence tests), differing only in whether candidate rows are
// screened by the int8 sketch bound before any float64 work. cmd/benchdiff
// guards the pair's ratio in CI.
func BenchmarkMatchQuantOn(b *testing.B)  { benchQuant(b, false) }
func BenchmarkMatchQuantOff(b *testing.B) { benchQuant(b, true) }

// BenchmarkPipelineParallel measures the worker pool over the full Disease
// A-Z test corpus. (On a single-core host the two settings coincide; the
// value of the parallel path is verified by the determinism and race tests
// in internal/thor.)
func BenchmarkPipelineParallel(b *testing.B) {
	ds := experiments.DiseaseDataset()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, err := thor.New(ds.TestTable(), ds.Space, thor.Config{
				Tau: experiments.BestTau, Knowledge: ds.Table,
				Lexicon: ds.Lexicon, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(ds.Test.Docs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
